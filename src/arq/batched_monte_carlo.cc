#include "arq/batched_monte_carlo.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace qla::arq {

BatchedLogicalQubitExperiment::BatchedLogicalQubitExperiment(
    const ecc::CssCode &code, NoiseParameters noise, LayoutDistances layout,
    int max_prep_attempts)
    : code_(code), noise_(noise), layout_(layout),
      max_prep_attempts_(max_prep_attempts), n_(code.blockLength()),
      frame_(3 * code.blockLength() * code.blockLength() * 3),
      model_(recordAllTraces())
{
    qla_assert(max_prep_attempts_ >= 1);
    qla_assert(n_ <= 32, "bit-sliced decode supports block length <= 32");
    qla_assert(code_.xChecks().size() <= 8 && code_.zChecks().size() <= 8,
               "bit-sliced decode supports <= 8 check rows");
    for (const ecc::QubitMask row : code_.xChecks())
        x_check_bits_.push_back(bitListOf(row));
    for (const ecc::QubitMask row : code_.zChecks())
        z_check_bits_.push_back(bitListOf(row));
    logical_x_bits_ = bitListOf(code_.logicalX());
    logical_z_bits_ = bitListOf(code_.logicalZ());
    flips_.reserve(n_ * n_);
}

BatchedLogicalQubitExperiment::BitList
BatchedLogicalQubitExperiment::bitListOf(ecc::QubitMask mask)
{
    BitList bits;
    while (mask) {
        const int i = std::countr_zero(mask);
        mask &= mask - 1;
        bits.idx[bits.count++] = static_cast<std::uint8_t>(i);
    }
    return bits;
}

std::size_t
BatchedLogicalQubitExperiment::ion(std::size_t c, std::size_t g, Role role,
                                   std::size_t i) const
{
    qla_assert(c < 3 && g < n_ && i < n_);
    return ((c * n_ + g) * 3 + static_cast<std::size_t>(role)) * n_ + i;
}

//
// Trace recording. Each recorder mirrors its scalar twin in
// monte_carlo.cc operation for operation; only the execution strategy
// differs (emit once here, replay word-parallel later).
//

std::size_t
BatchedLogicalQubitExperiment::traceIndex(Seg seg, std::size_t c,
                                          std::size_t g, std::size_t role,
                                          bool flag) const
{
    return ((((static_cast<std::size_t>(seg) * 3 + c) * n_ + g) * 3 + role)
            << 1)
        | static_cast<std::size_t>(flag);
}

double
BatchedLogicalQubitExperiment::moveProbability(Cells cells, int turns) const
{
    const double cell_equivalents = static_cast<double>(cells)
        + noise_.splitCellEquivalent
        + noise_.turnCellEquivalent * turns;
    return noise_.movementErrorPerCell * cell_equivalents;
}

const NoiseClassTable &
BatchedLogicalQubitExperiment::recordAllTraces()
{
    // Register the fixed fault classes up front so the class ids are
    // stable before any trace is recorded.
    classes_.classOf(noise_.gate1Error);
    classes_.classOf(noise_.gate2Error);
    classes_.classOf(noise_.measureError);
    classes_.classOf(
        moveProbability(layout_.intraBlockCells, layout_.intraBlockTurns));
    classes_.classOf(
        moveProbability(layout_.interBlockCells, layout_.interBlockTurns));

    traces_[0].resize(traceIndex(Seg::LogicalGate, 2, n_ - 1, 2, true)
                      + 1);
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t g = 0; g < n_; ++g) {
            for (const Role role : {Role::Data, Role::Ancilla}) {
                for (const bool plus : {false, true}) {
                    FrameTraceBuilder prep(classes_);
                    recordPrepRound(prep, c, g, role, plus);
                    traces_[0][traceIndex(Seg::PrepRound, c, g,
                                          static_cast<std::size_t>(role),
                                          plus)] = prep.take();
                    FrameTraceBuilder pair(classes_);
                    recordVerifyPair(pair, c, g, role, plus);
                    traces_[0][traceIndex(Seg::VerifyPair, c, g,
                                          static_cast<std::size_t>(role),
                                          plus)] = pair.take();
                }
            }
            for (const bool detect_x : {false, true}) {
                FrameTraceBuilder ext(classes_);
                recordExtractRound(ext, c, g, detect_x);
                traces_[0][traceIndex(Seg::ExtractRound, c, g, 0,
                                      detect_x)] = ext.take();
            }
        }
        for (const bool plus : {false, true}) {
            FrameTraceBuilder net(classes_);
            recordL2Network(net, c, plus);
            traces_[0][traceIndex(Seg::L2Network, c, 0, 0, plus)]
                = net.take();
        }
    }
    for (const bool detect_x : {false, true}) {
        FrameTraceBuilder cnot(classes_);
        recordL2Cnot(cnot, detect_x);
        traces_[0][traceIndex(Seg::L2Cnot, 0, 0, 0, detect_x)]
            = cnot.take();
        FrameTraceBuilder readout(classes_);
        recordL2Readout(readout, detect_x);
        traces_[0][traceIndex(Seg::L2Readout, 0, 0, 0, detect_x)]
            = readout.take();
    }
    for (const int level : {1, 2}) {
        FrameTraceBuilder gate(classes_);
        recordLogicalGate(gate, level);
        traces_[0][traceIndex(Seg::LogicalGate, 0, 0, 0, level == 2)]
            = gate.take();
    }

    // A shadow class space over the same probabilities: retry /
    // conditional-path replays get samplers of their own and never park
    // and unpark the full-width samplers' lane clocks.
    const std::size_t primary_classes = classes_.probabilities().size();
    std::vector<std::uint8_t> shadow(primary_classes);
    for (std::size_t k = 0; k < primary_classes; ++k)
        shadow[k] = classes_.newClass(classes_.probabilities()[k]);
    cls_corr_ = shadow[classes_.classOf(noise_.gate1Error)];
    traces_[1].resize(traces_[0].size());
    for (std::size_t t = 0; t < traces_[0].size(); ++t) {
        FrameTrace twin = traces_[0][t];
        for (FrameOp &op : twin.ops) {
            switch (op.kind) {
              case FrameOp::Kind::Noise1:
              case FrameOp::Kind::Noise2:
              case FrameOp::Kind::MeasureZ:
              case FrameOp::Kind::MeasureX:
              case FrameOp::Kind::NoisyH:
              case FrameOp::Kind::Noise1Range:
              case FrameOp::Kind::MeasureZRange:
              case FrameOp::Kind::MeasureXRange:
                op.cls = shadow[op.cls];
                break;
              case FrameOp::Kind::NoisyCnotMT:
              case FrameOp::Kind::NoisyCnotMC:
                op.cls = shadow[op.cls];
                op.cls2 = shadow[op.cls2];
                break;
              case FrameOp::Kind::NoisyCnotMTMeasZ:
              case FrameOp::Kind::NoisyCnotMTMeasX:
              case FrameOp::Kind::NoisyCnotMCMeasZ:
              case FrameOp::Kind::NoisyCnotMCMeasX:
                op.cls = shadow[op.cls];
                op.cls2 = shadow[op.cls2];
                op.cls3 = shadow[op.cls3];
                break;
              default:
                break;
            }
        }
        traces_[1][t] = std::move(twin);
    }
    return classes_;
}

void
BatchedLogicalQubitExperiment::recordEncode(FrameTraceBuilder &tb,
                                            std::size_t c, std::size_t g,
                                            Role role, bool plus)
{
    const auto &sched = code_.zeroEncoder();
    const double p_move = moveProbability(layout_.intraBlockCells,
                                          layout_.intraBlockTurns);
    tb.resetRange(ion(c, g, role, 0), n_);
    for (std::size_t pivot : sched.pivots)
        tb.noisyH(ion(c, g, role, pivot), noise_.gate1Error);
    for (const auto &[control, target] : sched.cnots) {
        const std::size_t qc = ion(c, g, role, control);
        const std::size_t qt = ion(c, g, role, target);
        tb.noisyCnot(qc, qt, qt, p_move, noise_.gate2Error);
    }
    if (plus) {
        for (std::size_t i = 0; i < n_; ++i)
            tb.noisyH(ion(c, g, role, i), noise_.gate1Error);
    }
}

void
BatchedLogicalQubitExperiment::recordVerifyRound(FrameTraceBuilder &tb,
                                                 std::size_t c,
                                                 std::size_t g, Role role,
                                                 bool plus)
{
    const double p_move = moveProbability(layout_.intraBlockCells,
                                          layout_.intraBlockTurns);
    for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t qa = ion(c, g, role, i);
        const std::size_t qv = ion(c, g, Role::Verify, i);
        // The verify ion shuttles whether it is control or target; the
        // two-qubit fault is ordered (qa, qv) as in the scalar schedule.
        if (plus)
            tb.noisyCnotMeas(qv, qa, qv, p_move, noise_.gate2Error, true,
                             noise_.measureError);
        else
            tb.noisyCnotMeas(qa, qv, qv, p_move, noise_.gate2Error, false,
                             noise_.measureError);
    }
}

void
BatchedLogicalQubitExperiment::recordPrepRound(FrameTraceBuilder &tb,
                                               std::size_t c,
                                               std::size_t g, Role role,
                                               bool plus)
{
    // One verified-preparation attempt, fused into a single segment:
    // the retry loop replays this once per attempt.
    recordEncode(tb, c, g, role, plus);
    recordEncode(tb, c, g, Role::Verify, plus);
    recordVerifyRound(tb, c, g, role, plus);
}

void
BatchedLogicalQubitExperiment::recordVerifyPair(FrameTraceBuilder &tb,
                                                std::size_t c,
                                                std::size_t g, Role role,
                                                bool plus)
{
    recordEncode(tb, c, g, Role::Verify, plus);
    recordVerifyRound(tb, c, g, role, plus);
}

void
BatchedLogicalQubitExperiment::recordExtractRound(FrameTraceBuilder &tb,
                                                  std::size_t c,
                                                  std::size_t g,
                                                  bool detect_x)
{
    const double p_move = moveProbability(layout_.interBlockCells,
                                          layout_.interBlockTurns);
    for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t qd = ion(c, g, Role::Data, i);
        const std::size_t qa = ion(c, g, Role::Ancilla, i);
        // The ancilla ion shuttles to the data block and back.
        if (detect_x)
            tb.noisyCnotMeas(qd, qa, qa, p_move, noise_.gate2Error, false,
                             noise_.measureError);
        else
            tb.noisyCnotMeas(qa, qd, qa, p_move, noise_.gate2Error, true,
                             noise_.measureError);
    }
}

void
BatchedLogicalQubitExperiment::recordL2Network(FrameTraceBuilder &tb,
                                               std::size_t c, bool plus)
{
    const auto &sched = code_.zeroEncoder();
    const double p_move = moveProbability(layout_.interBlockCells,
                                          layout_.interBlockTurns);
    for (std::size_t pivot : sched.pivots)
        for (std::size_t i = 0; i < n_; ++i)
            tb.noisyH(ion(c, pivot, Role::Data, i), noise_.gate1Error);
    for (const auto &[control, target] : sched.cnots) {
        for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t qc = ion(c, control, Role::Data, i);
            const std::size_t qt = ion(c, target, Role::Data, i);
            tb.noisyCnot(qc, qt, qt, p_move, noise_.gate2Error);
        }
    }
    if (plus) {
        for (std::size_t g = 0; g < n_; ++g)
            for (std::size_t i = 0; i < n_; ++i)
                tb.noisyH(ion(c, g, Role::Data, i), noise_.gate1Error);
    }
}

void
BatchedLogicalQubitExperiment::recordL2Cnot(FrameTraceBuilder &tb,
                                            bool detect_x)
{
    const std::size_t ac = detect_x ? 1 : 2;
    const double p_move = moveProbability(layout_.interBlockCells,
                                          layout_.interBlockTurns);
    for (std::size_t g = 0; g < n_; ++g) {
        for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t qd = ion(0, g, Role::Data, i);
            const std::size_t qa = ion(ac, g, Role::Data, i);
            if (detect_x)
                tb.noisyCnot(qd, qa, qa, p_move, noise_.gate2Error);
            else
                tb.noisyCnot(qa, qd, qa, p_move, noise_.gate2Error);
        }
    }
}

void
BatchedLogicalQubitExperiment::recordL2Readout(FrameTraceBuilder &tb,
                                               bool detect_x)
{
    const std::size_t ac = detect_x ? 1 : 2;
    for (std::size_t g = 0; g < n_; ++g)
        tb.measureRange(ion(ac, g, Role::Data, 0), n_, !detect_x,
                        noise_.measureError);
}

void
BatchedLogicalQubitExperiment::recordLogicalGate(FrameTraceBuilder &tb,
                                                 int level)
{
    const std::size_t groups = level == 1 ? 1 : n_;
    for (std::size_t g = 0; g < groups; ++g)
        tb.noise1Range(ion(0, g, Role::Data, 0), n_, noise_.gate1Error);
}

void
BatchedLogicalQubitExperiment::replaySeg(Seg seg, std::size_t c,
                                         std::size_t g, std::size_t role,
                                         bool flag, std::uint64_t active)
{
    // Primary classes on the straight-line schedule, the shadow twins
    // inside retry / conditional subtrees. The choice follows the
    // structural position (shadow_), never the mask value: which
    // sampler a lane draws from at a given site must be a function of
    // that lane's own control-flow path, or a shot's randomness would
    // depend on which word it shares with whom.
    const FrameTrace &t = traces_[shadow_ ? 1 : 0]
                                 [traceIndex(seg, c, g, role, flag)];
    qla_assert(!t.ops.empty(), "trace not recorded");
    flips_.clear();
    replayTrace(t, frame_, model_, active, flips_);
}

//
// Bit-sliced classical decoding.
//

std::uint64_t
BatchedLogicalQubitExperiment::orPlanes(const SyndromePlanes &planes,
                                        std::size_t count)
{
    std::uint64_t any = 0;
    for (std::size_t j = 0; j < count; ++j)
        any |= planes[j];
    return any;
}

void
BatchedLogicalQubitExperiment::correctionWords(bool x_corr,
                                               const SyndromePlanes &synd,
                                               std::size_t num_checks,
                                               std::uint64_t *words) const
{
    // Lanes with syndrome v get correction bits corr(v); syndrome 0 maps
    // to no correction, so v starts at 1 and every produced lane set is
    // automatically restricted to lanes with a non-trivial syndrome.
    if (!orPlanes(synd, num_checks))
        return; // every lane trivial -- the common case
    for (std::uint32_t v = 1; v < (1u << num_checks); ++v) {
        std::uint64_t lanes_v = ~std::uint64_t{0};
        for (std::size_t j = 0; j < num_checks; ++j)
            lanes_v &= ((v >> j) & 1u) ? synd[j] : ~synd[j];
        if (!lanes_v)
            continue;
        ecc::QubitMask corr = x_corr ? code_.xCorrection(v)
                                     : code_.zCorrection(v);
        while (corr) {
            const int i = std::countr_zero(corr);
            corr &= corr - 1;
            words[i] |= lanes_v;
        }
    }
}

std::uint64_t
BatchedLogicalQubitExperiment::decodeXLogicalPlane(
    const std::uint64_t *x_words) const
{
    const SyndromePlanes synd = planesOf(false, x_words);
    std::array<std::uint64_t, 32> corr{};
    correctionWords(true, synd, z_check_bits_.size(), corr.data());
    std::uint64_t plane = 0;
    for (std::size_t j = 0; j < logical_z_bits_.count; ++j) {
        const std::size_t i = logical_z_bits_.idx[j];
        plane ^= x_words[i] ^ corr[i];
    }
    return plane;
}

//
// Driver building blocks.
//

void
BatchedLogicalQubitExperiment::prepVerified(std::size_t c, std::size_t g,
                                            Role role, bool plus,
                                            std::uint64_t active,
                                            ExperimentStats *stats)
{
    const bool caller_shadow = shadow_;
    std::uint64_t mask = active;
    int attempts = 0;
    while (mask && attempts < max_prep_attempts_) {
        ++attempts;
        shadow_ = caller_shadow || attempts > 1;
        replaySeg(Seg::PrepRound, c, g, static_cast<std::size_t>(role),
                  plus, mask);
        const std::size_t num_checks = plus ? x_check_bits_.size()
                                            : z_check_bits_.size();
        const SyndromePlanes synd = planesOf(plus, flips_.data());
        std::uint64_t bad = orPlanes(synd, num_checks);
        bad |= parityPlane(plus ? logical_x_bits_ : logical_z_bits_,
                           flips_.data());
        bad &= mask;
        const std::uint64_t exited = attempts == max_prep_attempts_
            ? mask : (mask & ~bad);
        if (stats && exited)
            stats->prepAttempts.addRepeated(attempts,
                                            std::popcount(exited));
        mask &= bad;
    }
    shadow_ = caller_shadow;
}

BatchedLogicalQubitExperiment::SyndromePlanes
BatchedLogicalQubitExperiment::extractSyndrome(std::size_t c,
                                               std::size_t g,
                                               bool detect_x,
                                               std::uint64_t active,
                                               ExperimentStats *stats)
{
    prepVerified(c, g, Role::Ancilla, detect_x, active, stats);
    replaySeg(Seg::ExtractRound, c, g, 0, detect_x, active);
    const SyndromePlanes synd = planesOf(!detect_x, flips_.data());
    if (stats) {
        const std::size_t num_checks = detect_x ? z_check_bits_.size()
                                                : x_check_bits_.size();
        stats->nontrivialSyndrome.addBulk(
            std::popcount(orPlanes(synd, num_checks) & active),
            std::popcount(active));
    }
    return synd;
}

void
BatchedLogicalQubitExperiment::applyCorrection(std::size_t c,
                                               std::size_t g, Role role,
                                               bool detect_x,
                                               const SyndromePlanes &synd,
                                               std::uint64_t active)
{
    const std::size_t num_checks = detect_x ? code_.zChecks().size()
                                            : code_.xChecks().size();
    if (!(orPlanes(synd, num_checks) & active))
        return;
    std::array<std::uint64_t, 32> inject{};
    correctionWords(detect_x, synd, num_checks, inject.data());
    for (std::size_t i = 0; i < n_; ++i) {
        const std::uint64_t lanes = inject[i] & active;
        if (!lanes)
            continue;
        const std::size_t q = ion(c, g, role, i);
        // Fold the Pauli correction into the frame; the physical gate
        // can itself fault, on exactly the lanes that applied it.
        if (detect_x)
            frame_.injectX(q, lanes);
        else
            frame_.injectZ(q, lanes);
        quantum::depolarize1(frame_, q, model_.samplers[cls_corr_],
                             model_.lanes, lanes);
    }
}

void
BatchedLogicalQubitExperiment::ecCycleL1(std::size_t c, std::size_t g,
                                         std::uint64_t active,
                                         ExperimentStats *stats)
{
    for (const bool detect_x : {true, false}) {
        const std::size_t num_checks = detect_x ? code_.zChecks().size()
                                                : code_.xChecks().size();
        const SyndromePlanes first = extractSyndrome(c, g, detect_x,
                                                     active, stats);
        const std::uint64_t repeat = orPlanes(first, num_checks) & active;
        SyndromePlanes final{};
        if (repeat) {
            // Non-trivial: extract once more on those lanes and act on
            // the repeat (paper Section 4.1.1 assumption (b)).
            const bool caller_shadow = shadow_;
            shadow_ = true;
            const SyndromePlanes second = extractSyndrome(c, g, detect_x,
                                                          repeat, stats);
            shadow_ = caller_shadow;
            for (std::size_t j = 0; j < num_checks; ++j)
                final[j] = second[j] & repeat;
        }
        applyCorrection(c, g, Role::Data, detect_x, final, active);
    }
}

void
BatchedLogicalQubitExperiment::prepL2Ancilla(std::size_t c, bool plus,
                                             std::uint64_t active,
                                             ExperimentStats *stats)
{
    const bool caller_shadow = shadow_;
    std::uint64_t mask = active;
    for (int attempt = 0; attempt < max_prep_attempts_ && mask;
         ++attempt) {
        shadow_ = caller_shadow || attempt > 0;
        for (std::size_t g = 0; g < n_; ++g)
            prepVerified(c, g, Role::Data, false, mask, stats);
        replaySeg(Seg::L2Network, c, 0, 0, plus, mask);
        for (std::size_t g = 0; g < n_; ++g)
            ecCycleL1(c, g, mask, stats);

        // Level-2 verification: per sub-block difference readout, inner
        // decode, then the outer syndrome/parity check; "Start Over" on
        // the lanes that fail.
        const std::size_t num_checks = plus ? x_check_bits_.size()
                                            : z_check_bits_.size();
        const BitList &logical = plus ? logical_x_bits_ : logical_z_bits_;
        std::array<std::uint64_t, 32> outer_flips{};
        for (std::size_t g = 0; g < n_; ++g) {
            replaySeg(Seg::VerifyPair, c, g,
                      static_cast<std::size_t>(Role::Data), plus, mask);
            const SyndromePlanes synd = planesOf(plus, flips_.data());
            std::array<std::uint64_t, 32> corr{};
            correctionWords(!plus, synd, num_checks, corr.data());
            std::uint64_t plane = 0;
            for (std::size_t j = 0; j < logical.count; ++j) {
                const std::size_t i = logical.idx[j];
                plane ^= flips_[i] ^ corr[i];
            }
            outer_flips[g] = plane & mask;
        }
        const SyndromePlanes outer_synd = planesOf(plus,
                                                   outer_flips.data());
        std::uint64_t bad = orPlanes(outer_synd, num_checks);
        bad |= parityPlane(logical, outer_flips.data());
        mask &= bad;
    }
    shadow_ = caller_shadow;
}

BatchedLogicalQubitExperiment::SyndromePlanes
BatchedLogicalQubitExperiment::extractSyndromeL2(bool detect_x,
                                                 std::uint64_t active,
                                                 ExperimentStats *stats)
{
    const std::size_t ac = detect_x ? 1 : 2;
    prepL2Ancilla(ac, detect_x, active, stats);
    replaySeg(Seg::L2Cnot, 0, 0, 0, detect_x, active);
    for (std::size_t g = 0; g < n_; ++g) {
        ecCycleL1(0, g, active, stats);
        ecCycleL1(ac, g, active, stats);
    }
    replaySeg(Seg::L2Readout, 0, 0, 0, detect_x, active);

    const std::size_t num_checks = detect_x ? z_check_bits_.size()
                                            : x_check_bits_.size();
    const BitList &logical = detect_x ? logical_z_bits_ : logical_x_bits_;
    std::array<std::uint64_t, 32> outer_flips{};
    for (std::size_t g = 0; g < n_; ++g) {
        const std::uint64_t *block_flips = flips_.data() + g * n_;
        const SyndromePlanes synd = planesOf(!detect_x, block_flips);
        std::array<std::uint64_t, 32> corr{};
        correctionWords(detect_x, synd, num_checks, corr.data());
        std::uint64_t plane = 0;
        for (std::size_t j = 0; j < logical.count; ++j) {
            const std::size_t i = logical.idx[j];
            plane ^= block_flips[i] ^ corr[i];
        }
        outer_flips[g] = plane & active;
    }
    const SyndromePlanes outer = planesOf(!detect_x, outer_flips.data());
    if (stats)
        stats->nontrivialSyndrome.addBulk(
            std::popcount(orPlanes(outer, num_checks) & active),
            std::popcount(active));
    return outer;
}

void
BatchedLogicalQubitExperiment::ecCycleL2(std::uint64_t active,
                                         ExperimentStats *stats)
{
    for (const bool detect_x : {true, false}) {
        const std::size_t num_checks = detect_x ? code_.zChecks().size()
                                                : code_.xChecks().size();
        const SyndromePlanes first = extractSyndromeL2(detect_x, active,
                                                       stats);
        const std::uint64_t repeat = orPlanes(first, num_checks) & active;
        SyndromePlanes final{};
        if (repeat) {
            shadow_ = true;
            const SyndromePlanes second = extractSyndromeL2(detect_x,
                                                            repeat, stats);
            shadow_ = false;
            for (std::size_t j = 0; j < num_checks; ++j)
                final[j] = second[j] & repeat;
        }
        if (!(orPlanes(final, num_checks) & active))
            continue;
        // Logical Pauli corrections: sub-block g of each selected lane
        // receives a transversal physical Pauli, faults included.
        std::array<std::uint64_t, 32> blocks{};
        correctionWords(detect_x, final, num_checks, blocks.data());
        for (std::size_t g = 0; g < n_; ++g) {
            const std::uint64_t lanes = blocks[g] & active;
            if (!lanes)
                continue;
            for (std::size_t i = 0; i < n_; ++i) {
                const std::size_t q = ion(0, g, Role::Data, i);
                if (detect_x)
                    frame_.injectX(q, lanes);
                else
                    frame_.injectZ(q, lanes);
                quantum::depolarize1(frame_, q,
                                     model_.samplers[cls_corr_],
                                     model_.lanes, lanes);
            }
        }
    }
}

std::uint64_t
BatchedLogicalQubitExperiment::decodeLevel1(std::size_t c, std::size_t g,
                                            Role role) const
{
    // Only residual logical-X frames count for the |0>_L input; see the
    // scalar decodeLevel1 for the gauge argument.
    std::array<std::uint64_t, 32> xm{};
    for (std::size_t i = 0; i < n_; ++i)
        xm[i] = frame_.xWord(ion(c, g, role, i));
    return decodeXLogicalPlane(xm.data());
}

std::uint64_t
BatchedLogicalQubitExperiment::decodeLevel2() const
{
    std::array<std::uint64_t, 32> outer{};
    for (std::size_t g = 0; g < n_; ++g)
        outer[g] = decodeLevel1(0, g, Role::Data);
    return decodeXLogicalPlane(outer.data());
}

std::uint64_t
BatchedLogicalQubitExperiment::runShots(int level, std::uint64_t active,
                                        ExperimentStats *stats)
{
    qla_assert(level == 1 || level == 2, "levels 1 and 2 are supported");
    shadow_ = false;
    frame_.reset(); // perfectly encoded |0>_L input on every lane

    replaySeg(Seg::LogicalGate, 0, 0, 0, level == 2, active);
    if (level == 1) {
        ecCycleL1(0, 0, active, stats);
        return decodeLevel1(0, 0, Role::Data) & active;
    }
    ecCycleL2(active, stats);
    return decodeLevel2() & active;
}

sim::RateStat
BatchedLogicalQubitExperiment::failureRate(int level, std::size_t shots,
                                           std::uint64_t seed,
                                           ExperimentStats *stats)
{
    sim::RateStat rate;
    const RngFamily family(seed);
    std::size_t done = 0;
    while (done < shots) {
        const std::size_t batch = std::min<std::size_t>(kBatchLanes,
                                                        shots - done);
        const std::uint64_t active = batch == kBatchLanes
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << batch) - 1);
        model_.rearm(family, done);
        const std::uint64_t failed = runShots(level, active, stats);
        rate.addBulk(std::popcount(failed), batch);
        if (stats)
            stats->logicalFailure.addBulk(std::popcount(failed), batch);
        done += batch;
    }
    return rate;
}

} // namespace qla::arq
