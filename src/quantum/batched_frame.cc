#include "quantum/batched_frame.h"

#include <algorithm>
#include <bit>

namespace qla::quantum {

void
BatchedPauliFrame::reset()
{
    std::fill(x_.begin(), x_.end(), 0);
    std::fill(z_.begin(), z_.end(), 0);
}

void
applyDepolarize1(BatchedPauliFrame &frame, std::size_t q,
                 std::uint64_t fired, LaneRngs &lanes)
{
    std::uint64_t fx = 0, fz = 0;
    while (fired) {
        const int l = std::countr_zero(fired);
        fired &= fired - 1;
        const std::uint64_t bit = std::uint64_t{1} << l;
        // Same X/Y/Z encoding as the scalar PauliFrame::depolarize1.
        switch (lanes[l].uniformInt(3)) {
          case 0:
            fx |= bit;
            break;
          case 1:
            fx |= bit;
            fz |= bit;
            break;
          default:
            fz |= bit;
            break;
        }
    }
    if (fx)
        frame.injectX(q, fx);
    if (fz)
        frame.injectZ(q, fz);
}

void
applyDepolarize2(BatchedPauliFrame &frame, std::size_t a, std::size_t b,
                 std::uint64_t fired, LaneRngs &lanes)
{
    std::uint64_t fxa = 0, fza = 0, fxb = 0, fzb = 0;
    while (fired) {
        const int l = std::countr_zero(fired);
        fired &= fired - 1;
        const std::uint64_t bit = std::uint64_t{1} << l;
        // Uniform over the 15 non-identity pairs; encoding matches the
        // scalar PauliFrame::depolarize2 (pa, pb in {I,X,Y,Z}).
        const std::uint64_t k = lanes[l].uniformInt(15) + 1;
        const std::uint64_t pa = k / 4;
        const std::uint64_t pb = k % 4;
        if (pa == 1 || pa == 2)
            fxa |= bit;
        if (pa == 2 || pa == 3)
            fza |= bit;
        if (pb == 1 || pb == 2)
            fxb |= bit;
        if (pb == 2 || pb == 3)
            fzb |= bit;
    }
    if (fxa)
        frame.injectX(a, fxa);
    if (fza)
        frame.injectZ(a, fza);
    if (fxb)
        frame.injectX(b, fxb);
    if (fzb)
        frame.injectZ(b, fzb);
}

void
depolarize1(BatchedPauliFrame &frame, std::size_t q,
            BernoulliWordSampler &sampler, LaneRngs &lanes,
            std::uint64_t active)
{
    const std::uint64_t fired = sampler.sample(active, lanes);
    if (fired)
        applyDepolarize1(frame, q, fired, lanes);
}

void
depolarize2(BatchedPauliFrame &frame, std::size_t a, std::size_t b,
            BernoulliWordSampler &sampler, LaneRngs &lanes,
            std::uint64_t active)
{
    const std::uint64_t fired = sampler.sample(active, lanes);
    if (fired)
        applyDepolarize2(frame, a, b, fired, lanes);
}

} // namespace qla::quantum
