#include "quantum/pauli.h"

#include <bit>

#include "common/logging.h"

namespace qla::quantum {

namespace {

std::size_t
wordCount(std::size_t num_qubits)
{
    return (num_qubits + 63) / 64;
}

} // namespace

Pauli
pauliFromBits(bool x, bool z)
{
    if (x && z)
        return Pauli::Y;
    if (x)
        return Pauli::X;
    if (z)
        return Pauli::Z;
    return Pauli::I;
}

char
pauliChar(Pauli p)
{
    switch (p) {
      case Pauli::I:
        return 'I';
      case Pauli::X:
        return 'X';
      case Pauli::Z:
        return 'Z';
      case Pauli::Y:
        return 'Y';
    }
    return '?';
}

PauliString::PauliString(std::size_t num_qubits)
    : num_qubits_(num_qubits), x_(wordCount(num_qubits), 0),
      z_(wordCount(num_qubits), 0)
{
}

PauliString
PauliString::fromString(const std::string &text)
{
    std::size_t start = 0;
    int phase = 0;
    if (!text.empty() && (text[0] == '+' || text[0] == '-')) {
        phase = text[0] == '-' ? 2 : 0;
        start = 1;
    }
    PauliString result(text.size() - start);
    for (std::size_t i = start; i < text.size(); ++i) {
        switch (text[i]) {
          case 'I':
            break;
          case 'X':
            result.set(i - start, Pauli::X);
            break;
          case 'Y':
            result.set(i - start, Pauli::Y);
            break;
          case 'Z':
            result.set(i - start, Pauli::Z);
            break;
          default:
            qla_fatal("bad Pauli character '", text[i], "' in \"", text,
                      "\"");
        }
    }
    result.setPhaseExponent(phase);
    return result;
}

PauliString
PauliString::single(std::size_t num_qubits, std::size_t qubit, Pauli p)
{
    PauliString result(num_qubits);
    result.set(qubit, p);
    return result;
}

Pauli
PauliString::at(std::size_t qubit) const
{
    return pauliFromBits(xBit(qubit), zBit(qubit));
}

void
PauliString::set(std::size_t qubit, Pauli p)
{
    setXBit(qubit, pauliHasX(p));
    setZBit(qubit, pauliHasZ(p));
}

bool
PauliString::xBit(std::size_t qubit) const
{
    qla_assert(qubit < num_qubits_);
    return (x_[qubit / 64] >> (qubit % 64)) & 1ULL;
}

bool
PauliString::zBit(std::size_t qubit) const
{
    qla_assert(qubit < num_qubits_);
    return (z_[qubit / 64] >> (qubit % 64)) & 1ULL;
}

void
PauliString::setXBit(std::size_t qubit, bool v)
{
    qla_assert(qubit < num_qubits_);
    const std::uint64_t mask = 1ULL << (qubit % 64);
    if (v)
        x_[qubit / 64] |= mask;
    else
        x_[qubit / 64] &= ~mask;
}

void
PauliString::setZBit(std::size_t qubit, bool v)
{
    qla_assert(qubit < num_qubits_);
    const std::uint64_t mask = 1ULL << (qubit % 64);
    if (v)
        z_[qubit / 64] |= mask;
    else
        z_[qubit / 64] &= ~mask;
}

int
PauliString::sign() const
{
    qla_assert(phase_ == 0 || phase_ == 2, "non-Hermitian Pauli phase i^",
               phase_);
    return phase_ == 0 ? 1 : -1;
}

std::size_t
PauliString::weight() const
{
    std::size_t w = 0;
    for (std::size_t i = 0; i < x_.size(); ++i)
        w += std::popcount(x_[i] | z_[i]);
    return w;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    qla_assert(num_qubits_ == other.num_qubits_);
    int parity = 0;
    for (std::size_t i = 0; i < x_.size(); ++i) {
        parity ^= std::popcount((x_[i] & other.z_[i])
                                ^ (z_[i] & other.x_[i])) & 1;
    }
    return parity == 0;
}

int
pauliProductPhaseWord(std::uint64_t x1, std::uint64_t z1, std::uint64_t x2,
                      std::uint64_t z2)
{
    // Phase contribution of multiplying P1 * P2 per qubit:
    //   X*Y=iZ, Y*Z=iX, Z*X=iY  -> +1
    //   X*Z=-iY, Y*X=-iZ, Z*Y=-iX -> -1
    const std::uint64_t is_x1 = x1 & ~z1;
    const std::uint64_t is_y1 = x1 & z1;
    const std::uint64_t is_z1 = ~x1 & z1;
    const std::uint64_t is_x2 = x2 & ~z2;
    const std::uint64_t is_y2 = x2 & z2;
    const std::uint64_t is_z2 = ~x2 & z2;

    const std::uint64_t plus = (is_x1 & is_y2) | (is_y1 & is_z2)
        | (is_z1 & is_x2);
    const std::uint64_t minus = (is_x1 & is_z2) | (is_y1 & is_x2)
        | (is_z1 & is_y2);

    return std::popcount(plus) - std::popcount(minus);
}

PauliString &
PauliString::operator*=(const PauliString &other)
{
    qla_assert(num_qubits_ == other.num_qubits_);
    int phase = phase_ + other.phase_;
    for (std::size_t i = 0; i < x_.size(); ++i) {
        phase += pauliProductPhaseWord(x_[i], z_[i], other.x_[i],
                                       other.z_[i]);
        x_[i] ^= other.x_[i];
        z_[i] ^= other.z_[i];
    }
    setPhaseExponent(phase);
    return *this;
}

bool
PauliString::operator==(const PauliString &other) const
{
    return num_qubits_ == other.num_qubits_ && phase_ == other.phase_
        && x_ == other.x_ && z_ == other.z_;
}

std::string
PauliString::toString() const
{
    const char *prefix = "+";
    switch (phase_) {
      case 1:
        prefix = "i";
        break;
      case 2:
        prefix = "-";
        break;
      case 3:
        prefix = "-i";
        break;
      default:
        break;
    }
    std::string out(prefix);
    for (std::size_t q = 0; q < num_qubits_; ++q)
        out.push_back(pauliChar(at(q)));
    return out;
}

} // namespace qla::quantum
