#include "teleport/repeater.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qla::teleport {

RepeaterConfig
RepeaterConfig::fromTechnology(const TechnologyParameters &tech)
{
    RepeaterConfig config;
    config.purifyStepTime = tech.doubleGateTime + tech.measureTime;
    config.swapStepTime = tech.doubleGateTime + tech.measureTime
        + tech.singleGateTime;
    config.pairGenerationInterval = tech.splitTime + 2.0 * tech.coolingTime;
    config.cellTraversalTime = tech.cellTraversalTime;
    return config;
}

RepeaterChain::RepeaterChain(RepeaterConfig config)
    : config_(std::move(config))
{
    config_.pumping.opError = config_.opError;
}

double
RepeaterChain::elementaryFidelity(Cells island_spacing) const
{
    WernerPair pair{1.0 - config_.creationError};
    // The two halves travel half a segment each; the total traversed
    // distance equals the island spacing.
    return transportDecay(pair, island_spacing, config_.perCellError)
        .fidelity;
}

namespace {

/** Exact balanced-tree swap composition for an arbitrary segment count. */
double
composeTree(double segment_f, int segments, double op_error)
{
    if (segments <= 1)
        return segment_f;
    const int left = segments / 2;
    const int right = segments - left;
    const WernerPair a{composeTree(segment_f, left, op_error)};
    const WernerPair b{composeTree(segment_f, right, op_error)};
    return swapPairs(a, b, op_error).fidelity;
}

} // namespace

double
RepeaterChain::composedFidelity(double segment_f, int segments) const
{
    qla_assert(segments >= 1);
    return composeTree(segment_f, segments, config_.opError);
}

double
RepeaterChain::requiredSegmentFidelity(int segments, double ceiling) const
{
    const double target = 1.0 - config_.targetInfidelity;
    if (composedFidelity(ceiling, segments) < target)
        return -1.0; // infeasible even with the best reachable segments

    double lo = 0.5;
    double hi = ceiling;
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (composedFidelity(mid, segments) >= target)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

ConnectionPlan
RepeaterChain::plan(Cells total_cells, Cells island_spacing) const
{
    qla_assert(total_cells > 0 && island_spacing > 0);
    ConnectionPlan out;
    out.segments = static_cast<int>(
        (total_cells + island_spacing - 1) / island_spacing);
    out.swapLevels = out.segments <= 1
        ? 0
        : static_cast<int>(std::ceil(std::log2(out.segments)));

    // Islands "are equipped with the capability of being used or not
    // being used" (Section 4.2), so the scheduler balances the chain:
    // the effective segment length is total/segments, never longer than
    // the nominal island spacing.
    const Cells segment_cells = (total_cells + out.segments - 1)
        / static_cast<Cells>(out.segments);
    const double f0 = elementaryFidelity(segment_cells);
    if (f0 <= 0.5)
        return out; // raw pairs below the purification threshold

    const double ceiling = pumpingCeiling(f0, config_.pumping);
    const double f_seg = requiredSegmentFidelity(out.segments, ceiling);
    if (f_seg < 0.0)
        return out;
    out.requiredSegmentFidelity = f_seg;

    const SegmentPlan seg = planPumping(f0, f_seg, config_.pumping);
    if (!seg.feasible)
        return out;
    out.segmentPlan = seg;
    out.elementaryPairsPerSegment = seg.expectedElementaryPairs;
    out.finalFidelity = composedFidelity(seg.finalFidelity, out.segments);

    // Interior islands purify both adjacent segments through their gate
    // region(s); the busiest island serializes two segments' worth of
    // pump operations.
    const double island_share = out.segments > 1 ? 2.0 : 1.0;
    out.opsAtBusiestIsland = island_share * seg.expectedOpsPerEnd
        / static_cast<double>(config_.gateRegionsPerIsland);

    // Purification phase: pump ops serialized at the busiest island, with
    // elementary-pair generation pipelined on the segment channel
    // underneath (whichever dominates).
    const Seconds first_pair = config_.pairGenerationInterval
        + config_.cellTraversalTime
            * (static_cast<double>(segment_cells) / 2.0);
    const Seconds pump_time = out.opsAtBusiestIsland
        * config_.purifyStepTime;
    const Seconds generation_time = seg.expectedElementaryPairs
        * config_.pairGenerationInterval;
    const Seconds purify_phase = first_pair
        + std::max(pump_time, generation_time);

    // Swapping phase: log2(N) rounds; each round's Bell measurements run
    // in parallel across the active islands.
    const Seconds swap_phase = static_cast<double>(out.swapLevels)
        * config_.swapStepTime;

    // Final teleport of the data qubit across the spanning pair.
    const Seconds teleport_phase = config_.swapStepTime;

    out.connectionTime = purify_phase + swap_phase + teleport_phase;
    out.feasible = true;
    return out;
}

} // namespace qla::teleport
