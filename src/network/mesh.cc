#include "network/mesh.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/rng.h"

namespace qla::network {

IslandMesh::IslandMesh(int width, int height, int bandwidth,
                       std::uint64_t slots_per_channel)
    : width_(width), height_(height), bandwidth_(bandwidth),
      slots_per_channel_(slots_per_channel),
      used_(static_cast<std::size_t>(width) * height * 4, 0)
{
    qla_assert(width > 0 && height > 0 && bandwidth > 0
                   && slots_per_channel > 0,
               "bad mesh parameters");
}

int
islandDistance(const IslandCoord &a, const IslandCoord &b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

bool
IslandMesh::inBounds(const IslandCoord &c) const
{
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
}

std::uint64_t
IslandMesh::linkCapacity() const
{
    return static_cast<std::uint64_t>(bandwidth_) * slots_per_channel_;
}

IslandCoord
IslandMesh::neighbor(const IslandCoord &c, Direction dir)
{
    switch (dir) {
      case Direction::East:
        return {c.x + 1, c.y};
      case Direction::West:
        return {c.x - 1, c.y};
      case Direction::North:
        return {c.x, c.y + 1};
      case Direction::South:
        return {c.x, c.y - 1};
    }
    return c;
}

std::size_t
IslandMesh::linkIndex(const IslandCoord &from, Direction dir) const
{
    qla_assert(inBounds(from), "link from out-of-bounds island");
    qla_assert(inBounds(neighbor(from, dir)), "link leaves the mesh");
    return (static_cast<std::size_t>(from.y) * width_ + from.x) * 4
        + static_cast<std::size_t>(dir);
}

std::uint64_t
IslandMesh::capacityOf(std::size_t link) const
{
    if (faults_on_ && down_until_[link] > windows_)
        return 0;
    return linkCapacity();
}

std::uint64_t
IslandMesh::freeSlots(const IslandCoord &from, Direction dir) const
{
    const std::size_t link = linkIndex(from, dir);
    const std::uint64_t cap = capacityOf(link);
    const std::uint64_t used = used_[link];
    return used >= cap ? 0 : cap - used;
}

std::uint64_t
IslandMesh::usedSlots(const IslandCoord &from, Direction dir) const
{
    return used_[linkIndex(from, dir)];
}

namespace {

/** Directed-link indices along a waypoint path. */
std::vector<std::size_t>
pathLinks(const IslandMesh &mesh, const std::vector<IslandCoord> &path,
          const std::function<std::size_t(const IslandCoord &, Direction)>
              &index)
{
    (void)mesh;
    std::vector<std::size_t> links;
    links.reserve(path.size() - 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const IslandCoord &a = path[i];
        const IslandCoord &b = path[i + 1];
        Direction dir;
        if (b.x == a.x + 1 && b.y == a.y)
            dir = Direction::East;
        else if (b.x == a.x - 1 && b.y == a.y)
            dir = Direction::West;
        else if (b.y == a.y + 1 && b.x == a.x)
            dir = Direction::North;
        else if (b.y == a.y - 1 && b.x == a.x)
            dir = Direction::South;
        else
            qla_panic("non-adjacent hop in island path");
        links.push_back(index(a, dir));
    }
    return links;
}

} // namespace

bool
IslandMesh::reservePath(const std::vector<IslandCoord> &path,
                        std::uint64_t pairs)
{
    if (path.size() < 2)
        return true; // local delivery, no mesh links involved

    const auto links = pathLinks(
        *this, path,
        [this](const IslandCoord &c, Direction d) {
            return linkIndex(c, d);
        });

    for (std::size_t link : links)
        if (used_[link] + pairs > capacityOf(link))
            return false;
    for (std::size_t link : links) {
        used_[link] += pairs;
        window_reserved_ += pairs;
        total_reserved_ += pairs;
    }
    return true;
}

std::uint64_t
IslandMesh::maxReservable(const std::vector<IslandCoord> &path) const
{
    if (path.size() < 2)
        return ~std::uint64_t{0};
    const auto links = pathLinks(
        *this, path,
        [this](const IslandCoord &c, Direction d) {
            return linkIndex(c, d);
        });
    std::uint64_t free = ~std::uint64_t{0};
    for (std::size_t link : links) {
        const std::uint64_t cap = capacityOf(link);
        const std::uint64_t f = used_[link] >= cap ? 0
                                                   : cap - used_[link];
        free = std::min(free, f);
    }
    return free;
}

void
IslandMesh::advanceWindow()
{
    std::fill(used_.begin(), used_.end(), 0);
    window_reserved_ = 0;
    ++windows_;
    if (faults_on_)
        refreshFaults();
}

namespace {

/** SplitMix64 finalizer; decorrelates (seed, link, window) tuples before
 *  they seed the per-draw Rng (which runs SplitMix64 again). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

void
IslandMesh::setLinkFaults(const LinkFaultConfig &config)
{
    faults_ = config;
    faults_on_ = config.any();
    if (!faults_on_)
        return;
    const std::size_t slots = used_.size();
    down_until_.assign(slots, 0);
    burst_.assign(slots, 0);
    // Mark the geometrically valid directed-link slots once; fault draws
    // and counters only touch real links.
    link_valid_.assign(slots, 0);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            const IslandCoord c{x, y};
            for (int d = 0; d < 4; ++d) {
                const auto dir = static_cast<Direction>(d);
                if (inBounds(neighbor(c, dir)))
                    link_valid_[linkIndex(c, dir)] = 1;
            }
        }
    }
    refreshFaults();
}

void
IslandMesh::refreshFaults()
{
    // One fresh Rng per (link, window): the fault realization is a pure
    // function of (seed, link index, window index) -- independent of
    // routing order and thread count. Draw order within a link's stream
    // is fixed (down first, then burst) so the processes stay decoupled.
    for (std::size_t link = 0; link < used_.size(); ++link) {
        if (!link_valid_[link])
            continue;
        Rng rng(mix64(mix64(faults_.seed + link) + windows_));
        const bool was_down = down_until_[link] > windows_;
        const bool down_draw = rng.bernoulli(faults_.linkDownRate);
        const bool burst_draw = rng.bernoulli(faults_.burstRate);
        if (!was_down) {
            ++down_trials_;
            if (down_draw) {
                ++down_events_;
                down_until_ [link] = windows_
                    + static_cast<std::uint64_t>(faults_.linkDownWindows);
            }
        }
        if (down_until_[link] > windows_)
            ++link_windows_down_;
        ++burst_trials_;
        burst_[link] = burst_draw ? 1 : 0;
        if (burst_draw)
            ++burst_events_;
    }
}

bool
IslandMesh::linkDown(const IslandCoord &from, Direction dir) const
{
    if (!faults_on_)
        return false;
    return down_until_[linkIndex(from, dir)] > windows_;
}

bool
IslandMesh::linkBurst(const IslandCoord &from, Direction dir) const
{
    if (!faults_on_)
        return false;
    return burst_[linkIndex(from, dir)] != 0;
}

int
IslandMesh::burstLinksOnPath(const std::vector<IslandCoord> &path) const
{
    if (!faults_on_ || faults_.burstRate <= 0.0 || path.size() < 2)
        return 0;
    const auto links = pathLinks(
        *this, path,
        [this](const IslandCoord &c, Direction d) {
            return linkIndex(c, d);
        });
    int bursts = 0;
    for (std::size_t link : links)
        bursts += burst_[link] != 0;
    return bursts;
}

std::uint64_t
IslandMesh::totalLinks() const
{
    // Interior islands have 4 outgoing links; edges fewer. Count exactly.
    std::uint64_t links = 0;
    links += 2ULL * (width_ - 1) * height_; // east/west pairs
    links += 2ULL * width_ * (height_ - 1); // north/south pairs
    return links;
}

double
IslandMesh::aggregateUtilization() const
{
    if (windows_ == 0)
        return 0.0;
    const double capacity = static_cast<double>(totalLinks())
        * static_cast<double>(linkCapacity())
        * static_cast<double>(windows_);
    return static_cast<double>(total_reserved_) / capacity;
}

Direction
stepToward(const IslandCoord &a, const IslandCoord &b, bool y_first)
{
    qla_assert(!(a == b), "no step needed");
    if (y_first) {
        if (b.y > a.y)
            return Direction::North;
        if (b.y < a.y)
            return Direction::South;
    }
    if (b.x > a.x)
        return Direction::East;
    if (b.x < a.x)
        return Direction::West;
    return b.y > a.y ? Direction::North : Direction::South;
}

} // namespace qla::network
