#include "sim/event_queue.h"

#include <algorithm>

namespace qla::sim {

EventQueue::~EventQueue()
{
    for (Entry *e : live_)
        delete e;
}

EventId
EventQueue::schedule(Seconds when, std::function<void()> action)
{
    qla_assert(when >= now_, "cannot schedule into the past: ", when,
               " < ", now_);
    auto *entry = new Entry{when, next_id_++, std::move(action), false};
    live_.push_back(entry);
    heap_.push(entry);
    return entry->id;
}

EventId
EventQueue::scheduleAfter(Seconds delay, std::function<void()> action)
{
    qla_assert(delay >= 0.0, "negative delay: ", delay);
    return schedule(now_ + delay, std::move(action));
}

void
EventQueue::cancel(EventId id)
{
    // Lazy cancellation: flag the entry; it is skipped when popped.
    for (Entry *e : live_) {
        if (e->id == id) {
            e->cancelled = true;
            return;
        }
    }
}

void
EventQueue::pruneCancelledTop()
{
    while (!heap_.empty() && heap_.top()->cancelled) {
        Entry *e = heap_.top();
        heap_.pop();
        live_.erase(std::find(live_.begin(), live_.end(), e));
        delete e;
    }
}

bool
EventQueue::empty() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->pruneCancelledTop();
    return heap_.empty();
}

bool
EventQueue::step()
{
    pruneCancelledTop();
    if (heap_.empty())
        return false;

    Entry *e = heap_.top();
    heap_.pop();
    live_.erase(std::find(live_.begin(), live_.end(), e));

    qla_assert(e->when >= now_, "event time went backwards");
    now_ = e->when;
    ++executed_;

    auto action = std::move(e->action);
    delete e;
    action();
    return true;
}

void
EventQueue::run(Seconds horizon)
{
    while (!empty()) {
        pruneCancelledTop();
        if (heap_.empty())
            break;
        if (horizon >= 0.0 && heap_.top()->when > horizon) {
            now_ = horizon;
            break;
        }
        step();
    }
}

} // namespace qla::sim
