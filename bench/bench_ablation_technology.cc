/**
 * @file
 * Experiment E12 -- Section 6 "Relaxing the Technology Restrictions":
 * how far can the expected Table-1 parameters be relaxed toward today's
 * (Pcurrent) values before level-2 operation stops being useful?
 * Sweeps each error source separately through the gap between Pexpected
 * and Pcurrent and reports the level-1/level-2 logical failure rates.
 */

#include <cstdio>

#include "arq/monte_carlo.h"
#include "ecc/steane.h"
#include "ecc/threshold.h"

using namespace qla;
using namespace qla::arq;

namespace {

void
sweepKnob(const char *label, void (*set)(NoiseParameters &, double),
          const std::vector<double> &values, std::size_t shots)
{
    std::printf("\n-- %s --\n%-12s %-22s %-22s %-10s\n", label, "value",
                "L1 failure", "L2 failure", "L2 wins?");
    Rng rng(616);
    for (double value : values) {
        NoiseParameters noise; // Pexpected baseline
        set(noise, value);
        LogicalQubitExperiment experiment(ecc::steaneCode(), noise);
        const auto l1 = experiment.failureRate(1, shots, rng);
        const auto l2 = experiment.failureRate(2, shots / 2, rng);
        std::printf("%-12.1e %8.5f +- %-10.5f %8.5f +- %-10.5f %s\n",
                    value, l1.rate(), l1.halfWidth95(), l2.rate(),
                    l2.halfWidth95(),
                    l2.rate() <= l1.rate() + 1e-9 ? "yes" : "no");
    }
}

} // namespace

int
main()
{
    const std::size_t shots = 1200;
    std::printf("== E12: relaxing the technology restrictions "
                "(Section 6) ==\n");
    std::printf("(each knob swept alone from Pexpected toward "
                "Pcurrent; %zu shots/point)\n",
                shots);

    sweepKnob(
        "two-qubit gate error (Pcurrent = 3e-2)",
        [](NoiseParameters &n, double v) { n.gate2Error = v; },
        {1e-7, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2}, shots);

    sweepKnob(
        "measurement error (Pcurrent = 1e-2)",
        [](NoiseParameters &n, double v) { n.measureError = v; },
        {1e-8, 1e-4, 1e-3, 1e-2}, shots);

    sweepKnob(
        "movement error per cell (Pcurrent = 1e-1)",
        [](NoiseParameters &n, double v) {
            n.movementErrorPerCell = v;
        },
        {1e-6, 1e-5, 1e-4, 3e-4, 1e-3}, shots);

    std::printf("\nreading: level-2 recursion tolerates two-qubit gate "
                "errors up to roughly the Figure-7 threshold (~2e-3) "
                "and per-cell movement errors around 1e-4 -- orders of "
                "magnitude above Pexpected, but still short of today's "
                "Pcurrent, which is the paper's Section-6 message.\n");
    return 0;
}
