/**
 * @file
 * Lane compaction for the retry-heavy far-above-threshold regime.
 *
 * A 64-shot word replays a verified-preparation attempt while *any* of
 * its lanes needs one, and a masked replay costs the same whether 1 or
 * 64 lanes are active -- so far above threshold, where verification
 * failures are common, nearly-empty retry replays dominate the batched
 * engine's word-wide retry amplification. The PrepRetryPool fixes this
 * by regrouping: when the surviving retry lanes across a shot group's
 * words drop below a fill threshold, they are gathered into fresh dense
 * words of a small scratch frame (the prep segment only touches the row
 * being prepared and its verification row, and starts by resetting
 * both, so no frame state needs to be carried in) and their remaining
 * attempts replay there, one dense word instead of many sparse ones.
 *
 * The determinism contract survives because each migrated lane carries
 * its identity with it: its per-shot rng stream moves by value, and its
 * noise-clock state in every shadow sampler is exported (parked) from
 * the source word and imported into the pool's sampler of the same
 * class -- and transplanted back afterwards. The pool's relocated trace
 * is recorded by the same TileRowRecorder as the in-place trace, so a
 * lane consumes draws at exactly the sites, and in exactly the order,
 * it would have in place: compacted and uncompacted runs are
 * bit-identical lane by lane (tests/test_arq_mc.cc).
 */

#ifndef QLA_ARQ_LANE_COMPACTION_H
#define QLA_ARQ_LANE_COMPACTION_H

#include <array>
#include <cstdint>
#include <vector>

#include "arq/batched_monte_carlo.h"
#include "arq/bitslice.h"
#include "arq/frame_trace.h"
#include "arq/tile_schedule.h"
#include "ecc/css_code.h"
#include "quantum/batched_frame.h"

namespace qla::arq {

/**
 * Dense replay engine for verified-preparation retries regrouped from
 * the words of one shot group.
 */
class PrepRetryPool
{
  public:
    /**
     * @param recorder          Records the relocated prep segment (must
     *                          be the recorder the parent traces used).
     * @param parent_classes    The parent experiment's class table.
     * @param shadow_of_primary Parent shadow class of each primary id.
     */
    PrepRetryPool(const ecc::CssCode &code, const TileRowRecorder &recorder,
                  int max_prep_attempts,
                  const NoiseClassTable &parent_classes,
                  const std::vector<std::uint8_t> &shadow_of_primary);

    /**
     * Run the remaining verified-preparation attempts (the first one
     * being attempt number @p first_attempt) for every lane in @p mask,
     * regrouped into dense words. The prepared row starts at parent
     * qubit @p role_q0; its final state, each lane's rng stream and
     * sampler clocks are scattered back into @p frames / @p models when
     * done. (The verification row is dead state after the round -- it
     * is re-encoded before every later use -- so it stays behind.)
     */
    void runRetries(bool plus, const LaneSet &mask, int first_attempt,
                    std::vector<quantum::BatchedPauliFrame> &frames,
                    std::vector<BatchedNoiseModel> &models,
                    std::size_t role_q0, ExperimentStats *stats);

    /**
     * Full verified preparation (attempts from 1) of several sites that
     * share one lane mask -- the per-group prep loop of the level-2
     * ancilla -- under a single gather/scatter: the per-lane transplant
     * cost amortizes over every site, which is what makes regrouping
     * profitable even at moderate mask fills. Sites execute in order,
     * each site's retry loop running to completion before the next, so
     * every lane consumes its stream exactly as the in-place loop
     * would.
     */
    void runPrepSeries(bool plus, const LaneSet &mask,
                       const std::size_t *site_role_q0,
                       std::size_t num_sites,
                       std::vector<quantum::BatchedPauliFrame> &frames,
                       std::vector<BatchedNoiseModel> &models,
                       ExperimentStats *stats);

  private:
    /** Lanes gathered for one dense batch (at most one word's worth). */
    struct Batch
    {
        const LaneRef *refs;
        std::size_t count;
    };

    void transplantIn(const Batch &batch,
                      std::vector<BatchedNoiseModel> &models);
    void transplantOut(const Batch &batch,
                       std::vector<BatchedNoiseModel> &models);
    /** Dense retry loop of one site; pool frame rows hold the result. */
    void runAttempts(bool plus, std::uint64_t mask, int first_attempt,
                     ExperimentStats *stats);
    void scatterRows(const Batch &batch,
                     std::vector<quantum::BatchedPauliFrame> &frames,
                     std::size_t role_q0) const;

    void runBatch(bool plus, const Batch &batch, int first_attempt,
                  std::vector<quantum::BatchedPauliFrame> &frames,
                  std::vector<BatchedNoiseModel> &models,
                  std::size_t role_q0, ExperimentStats *stats);

    const ecc::CssCode &code_;
    std::size_t n_; // block length; pool rows at [0, n) and [n, 2n)
    int max_prep_attempts_;
    NoiseClassTable classes_;
    std::array<FrameTrace, 2> traces_; // relocated prep round, per plus
    /** Parent shadow class backing each pool class (same probability). */
    std::vector<std::uint8_t> parent_cls_;
    std::vector<BitList> x_check_bits_;
    std::vector<BitList> z_check_bits_;
    BitList logical_x_bits_;
    BitList logical_z_bits_;
    quantum::BatchedPauliFrame frame_;
    BatchedNoiseModel model_;
    std::vector<std::uint64_t> flips_;
    /** Gathered lane refs, (word, lane)-sorted (see gatherLaneRefs). */
    std::array<LaneRef, kMaxGroupWords * kBatchLanes> refs_;
};

} // namespace qla::arq

#endif // QLA_ARQ_LANE_COMPACTION_H
