/**
 * @file
 * Logical-program co-simulation: computation and communication executed
 * together on the discrete-event kernel.
 *
 * This is the executable counterpart of the paper's Section-5 study:
 * a real circuit (QCLA adder, Toffoli network, banded QFT) is lowered
 * onto the island mesh (network/program_workload.h, network/placement.h)
 * and driven window by window on sim::EventQueue. Every scheduling
 * window is an event chain at one instant of simulated time --
 * demand emission + greedy routing, then one gate-advance event per
 * active gate (FIFO tie-break keeps them in gate order), then a
 * window-close event -- and a gate's window of progress commits only
 * when all its EPR demands were delivered: computation is *gated on
 * delivery*, and every window a gate waits is a stall charged to that
 * gate. With enough bandwidth the measured makespan equals the
 * dependency-DAG critical path (communication fully overlapped with
 * error correction, the paper's bandwidth-2 conclusion); with too
 * little, stalls stretch it.
 */

#ifndef QLA_NETWORK_COSIM_H
#define QLA_NETWORK_COSIM_H

#include <cstdint>
#include <functional>
#include <vector>

#include "network/placement.h"
#include "network/program_workload.h"
#include "network/scheduler.h"
#include "sim/event_queue.h"
#include "sim/stats.h"

namespace qla::network {

/** Co-simulation parameters. */
struct CoSimConfig
{
    /**
     * Mesh extent in islands; 0 means size automatically from the
     * program (meshForProgram).
     */
    int meshWidth = 0;
    int meshHeight = 0;
    /** Channels per direction per link. */
    int bandwidth = 2;
    /** Scheduling window: one level-2 EC period. */
    Seconds window = 0.043;
    /** Service time per purified EPR pair (see SchedulerConfig). */
    Seconds purifiedPairServiceTime = units::microseconds(1400.0);
    /** Qubit-drift optimization on/off. */
    bool driftOptimization = true;
    /** Detour attempts around congested columns. */
    int detourRadius = 2;
    /**
     * How many windows ahead an active gate's EPR demands are issued.
     * Pairs for a gate's window k can be delivered any time from k -
     * prefetchWindows up to the end of window k -- the paper's
     * pipelining of communication under the preceding error-correction
     * cycles ("communication always overlapped with error correction").
     * 0 disables prefetch: every window's pairs must route within that
     * window alone.
     *
     * Modeling decision: a prefetched demand pins its endpoint islands
     * at emission time. Drift moves between emission and consumption do
     * not re-target it -- the pairs are already in flight to where the
     * qubits were, and in-flight halves are not recalled -- so a pair
     * that drifts co-located after emission still counts as mesh
     * traffic. This slightly overstates traffic/stalls near drift
     * moves, i.e. it is conservative for the paper's
     * bandwidth-sufficiency and drift-saves-traffic conclusions.
     */
    int prefetchWindows = 2;
    /** Initial placement policy. */
    PlacementStrategy placement = PlacementStrategy::Affinity;
    /** Seed for the Random placement shuffle. */
    std::uint64_t seed = 1;
    /** Runaway guard: abort (completed = false) past this many windows. */
    std::uint64_t maxWindows = 1u << 22;
};

/** Results of one co-simulated program execution. */
struct CoSimReport
{
    /** False when the run hit maxWindows before finishing. */
    bool completed = false;
    /** EC windows consumed by computation. */
    std::uint64_t windows = 0;
    /**
     * Routing-only windows before computation begins: the first gates'
     * pairs prefetch while the logical qubits are still being encoded
     * and verified (initialization takes far longer than this), exact
     * like every later gate prefetches under its predecessors. Equals
     * prefetchWindows; not charged to the makespan.
     */
    std::uint64_t warmupWindows = 0;
    /** windows x window length. */
    Seconds makespan = 0.0;
    /** Ideal windows (dependency critical path) for this program. */
    std::uint64_t criticalPathWindows = 0;
    /** Gates executed. */
    std::uint64_t gates = 0;
    /** Transversal interactions issued. */
    std::uint64_t interactions = 0;

    /** EPR-pair conservation ledger: requested = delivered (mesh-routed
     *  + island-local) + dropped, plus whatever is still pending inside
     *  an open window (zero once completed). */
    std::uint64_t pairsRequested = 0;
    std::uint64_t pairsRoutedOnMesh = 0;
    std::uint64_t pairsLocal = 0;
    /** Always zero today: the engine never abandons a demand (stalled
     *  gates keep theirs pending). The term pins the ledger shape --
     *  any future drop path must account through it to keep the
     *  conservation property test meaningful. */
    std::uint64_t pairsDropped = 0;
    std::uint64_t pairsDelivered() const
    {
        return pairsRoutedOnMesh + pairsLocal;
    }
    /** Pair-windows deferred: undelivered pairs carried across a window
     *  boundary, summed over boundaries. */
    std::uint64_t deferredPairWindows = 0;

    /** Gate-windows spent waiting on delivery (the stall charge). */
    std::uint64_t stallWindows = 0;
    /** Gates that stalled at least once. */
    std::uint64_t gatesStalled = 0;
    /** Gate-windows a ready gate waited because its gadget-ancilla
     *  tiles could not be allocated (mesh too full). */
    std::uint64_t allocationStallWindows = 0;
    /** Drift relocations performed. */
    std::uint64_t driftMoves = 0;
    std::uint64_t backoffReroutes = 0;
    double utilization = 0.0;
    double averageRouteLength = 0.0;

    /** Communication (and tile allocation) never held computation back:
     *  when true and completed, the makespan is the dependency-DAG
     *  critical path. */
    bool fullyOverlapped() const
    {
        return stallWindows == 0 && allocationStallWindows == 0;
    }
};

/** Per-window observer snapshot (property tests hook in here). */
struct WindowProbe
{
    std::uint64_t window = 0;
    std::uint64_t pairsRequested = 0;
    std::uint64_t pairsDelivered = 0;
    std::uint64_t pairsPending = 0;
    std::uint64_t pairsDropped = 0;
    /** Cumulative gate-windows stalled so far. */
    std::uint64_t stallWindows = 0;
    const TilePlacement *placement = nullptr;
    const IslandMesh *mesh = nullptr;
};

using WindowProbeFn = std::function<void(const WindowProbe &)>;

/**
 * Event-driven executor for one lowered program.
 */
class ProgramCoSimulator
{
  public:
    /** @p program is held by reference and must outlive the simulator
     *  (lowered workloads are typically reused across many runs). */
    ProgramCoSimulator(const ProgramWorkload &program, CoSimConfig config);
    ProgramCoSimulator(ProgramWorkload &&, CoSimConfig) = delete;

    /** Execute the program; @p probe (optional) fires at the end of
     *  every window before reservations clear. */
    CoSimReport run(const WindowProbeFn &probe = {});

    /** Mesh extent actually used (after auto-sizing). */
    MeshExtent meshExtent() const { return extent_; }

  private:
    const ProgramWorkload &program_;
    CoSimConfig config_;
    MeshExtent extent_;
};

//
// Configuration sweeps.
//

/** One point of a co-simulation sweep. */
struct CoSimSweepPoint
{
    std::size_t workload = 0; ///< Index into CoSimSweepConfig::workloads.
    int bandwidth = 0;
    std::uint64_t seed = 0;
    CoSimReport report;
};

/** Sweep axes: workloads x bandwidths x seeds. */
struct CoSimSweepConfig
{
    /** Base configuration (mesh auto-sizing per workload when 0). */
    CoSimConfig base;
    std::vector<int> bandwidths = {1, 2, 3, 4};
    /** Seeds; each perturbs the (Random-strategy) placement. */
    std::vector<std::uint64_t> seeds = {1};
    /** Worker threads (sim::resolveThreadCount semantics). */
    int threads = 0;
};

/** Fixed-order reduction over a sweep's points. */
struct CoSimSweepStats
{
    sim::ScalarStat makespanWindows;
    sim::ScalarStat utilization;
    sim::ScalarStat stallWindows;
    sim::RateStat stalledRuns;
};

/**
 * Run every (workload, bandwidth, seed) combination on the shot
 * scheduler. Points come back in fixed lexicographic job order and each
 * job's result depends only on its own parameters, so the sweep is
 * bit-identical for every thread count (the repo determinism contract;
 * enforced by tools/determinism_gate --mode interconnect).
 */
std::vector<CoSimSweepPoint> runCoSimSweep(
    const std::vector<ProgramWorkload> &workloads,
    const CoSimSweepConfig &config);

/** Reduce sweep points in index order (deterministic merge). */
CoSimSweepStats reduceCoSimSweep(
    const std::vector<CoSimSweepPoint> &points);

} // namespace qla::network

#endif // QLA_NETWORK_COSIM_H
