/**
 * @file
 * Generic CSS stabilizer-code machinery.
 *
 * A CSS code is defined by X-type and Z-type parity-check matrices whose
 * row spaces are mutually orthogonal. This header provides the code
 * container, syndrome computation, minimum-weight lookup decoding for
 * small codes, and |0>_L encoder-circuit synthesis, all over bitmask rows
 * (codes up to 32 physical qubits, ample for the Steane [[7,1,3]] blocks
 * used by the QLA).
 */

#ifndef QLA_ECC_CSS_CODE_H
#define QLA_ECC_CSS_CODE_H

#include <cstdint>
#include <mutex>
#include <vector>

#include "circuit/circuit.h"

namespace qla::ecc {

/** Bitmask over physical qubits of one code block. */
using QubitMask = std::uint32_t;

/** Parity (0/1) of the bits of @p mask. */
int maskParity(QubitMask mask);

/**
 * Syndrome of an error pattern against a check matrix: bit i of the
 * result is the parity of (checks[i] & error).
 */
std::uint32_t syndromeOf(const std::vector<QubitMask> &checks,
                         QubitMask error);

/**
 * Minimum-weight lookup decoder for one error type.
 *
 * Built by enumerating error patterns of increasing weight; for each
 * syndrome the lightest pattern wins. Exact for any code small enough to
 * enumerate (n <= 32, weight <= 3 here).
 */
class LookupDecoder
{
  public:
    LookupDecoder() = default;

    /**
     * @param checks     Check matrix rows detecting this error type.
     * @param num_qubits Block length n.
     * @param max_weight Largest error weight enumerated.
     */
    LookupDecoder(const std::vector<QubitMask> &checks,
                  std::size_t num_qubits, int max_weight);

    /** Correction pattern for @p syndrome (0 when unknown/trivial). */
    QubitMask correction(std::uint32_t syndrome) const
    {
        return syndrome < table_.size() ? table_[syndrome] : 0;
    }

  private:
    /** Dense syndrome -> correction table (the batched Monte Carlo
     *  looks corrections up in its innermost decode loops). */
    std::vector<QubitMask> table_;
};

/**
 * A CSS code [[n, k, d]] with its decoders and encoder synthesis.
 */
class CssCode
{
  public:
    /**
     * @param name     Display name, e.g. "Steane [[7,1,3]]".
     * @param n        Physical qubits per block.
     * @param k        Logical qubits (1 for all codes used here).
     * @param distance Code distance.
     * @param x_checks X-type stabilizer generators (detect Z errors).
     * @param z_checks Z-type stabilizer generators (detect X errors).
     * @param logical_x Support of one logical-X representative.
     * @param logical_z Support of one logical-Z representative.
     */
    CssCode(std::string name, std::size_t n, std::size_t k, int distance,
            std::vector<QubitMask> x_checks, std::vector<QubitMask> z_checks,
            QubitMask logical_x, QubitMask logical_z);

    const std::string &name() const { return name_; }
    std::size_t blockLength() const { return n_; }
    std::size_t logicalQubits() const { return k_; }
    int distance() const { return distance_; }
    int correctableErrors() const { return (distance_ - 1) / 2; }

    const std::vector<QubitMask> &xChecks() const { return x_checks_; }
    const std::vector<QubitMask> &zChecks() const { return z_checks_; }
    QubitMask logicalX() const { return logical_x_; }
    QubitMask logicalZ() const { return logical_z_; }

    /** Syndrome of an X-error pattern (measured by Z-type checks). */
    std::uint32_t xErrorSyndrome(QubitMask x_errors) const;
    /** Syndrome of a Z-error pattern (measured by X-type checks). */
    std::uint32_t zErrorSyndrome(QubitMask z_errors) const;

    /** Correction for an X-error syndrome. */
    QubitMask xCorrection(std::uint32_t syndrome) const
    {
        return x_decoder_.correction(syndrome);
    }
    /** Correction for a Z-error syndrome. */
    QubitMask zCorrection(std::uint32_t syndrome) const
    {
        return z_decoder_.correction(syndrome);
    }

    /**
     * Ideal decode of a residual X-error pattern: correct via lookup and
     * report whether a logical X remains (anticommutes with logical Z).
     */
    bool decodeXErrorIsLogical(QubitMask x_errors) const;
    /** Dual for Z errors. */
    bool decodeZErrorIsLogical(QubitMask z_errors) const;

    /**
     * |0>_L encoder structure: H on the pivot qubits of the row-reduced
     * X-check matrix, then for each pivot a CNOT fan-out to the rest of
     * its row. Valid for every CSS code (the resulting state is the +1
     * eigenstate of all X checks, Z checks and logical Z).
     */
    struct EncoderSchedule
    {
        /** Qubits receiving an initial H. */
        std::vector<std::size_t> pivots;
        /** CNOT (control, target) pairs in dependency order. */
        std::vector<std::pair<std::size_t, std::size_t>> cnots;
        /** ASAP layering of the CNOT list (same indexing). */
        std::vector<std::size_t> cnotLayers;
        /** Number of CNOT layers. */
        std::size_t depth = 0;
    };

    /** Synthesize (and cache) the |0>_L encoder schedule. */
    const EncoderSchedule &zeroEncoder() const;

    /** The encoder as a circuit over n qubits (prep + H + CNOTs). */
    circuit::QuantumCircuit zeroEncoderCircuit() const;

  private:
    std::string name_;
    std::size_t n_;
    std::size_t k_;
    int distance_;
    std::vector<QubitMask> x_checks_;
    std::vector<QubitMask> z_checks_;
    QubitMask logical_x_;
    QubitMask logical_z_;
    LookupDecoder x_decoder_;
    LookupDecoder z_decoder_;
    void buildEncoder() const;

    // Lazily built under encoder_once_: zeroEncoder() stays safe when
    // parallel sweep workers construct experiments over a shared code.
    mutable std::once_flag encoder_once_;
    mutable EncoderSchedule encoder_;
};

} // namespace qla::ecc

#endif // QLA_ECC_CSS_CODE_H
