/**
 * @file
 * Nested entanglement-pumping planner for one repeater segment.
 *
 * Paper Section 4.2 (Figure 8): EPR pairs are created in the middle of
 * the channel between two islands and distributed to both ends; "one pair
 * is designated as the data EPR and is continually purified in
 * round-robin pipeline fashion". Pumping with raw pairs saturates at a
 * fixed point, so reaching high fidelity requires *nested* pumping:
 * grade-g pairs are pumped with grade-(g-1) pairs (Dur et al.'s scheme).
 *
 * The planner chooses how many pump steps to run at each grade and
 * accounts for the expected number of island operations and elementary
 * pairs, including purification-failure restarts (renewal argument: the
 * expected cost of a sequence of dependent probabilistic steps with
 * restart-on-failure is attempt cost divided by attempt success
 * probability).
 */

#ifndef QLA_TELEPORT_PURIFICATION_H
#define QLA_TELEPORT_PURIFICATION_H

#include <vector>

#include "teleport/werner.h"

namespace qla::teleport {

/** Tuning for the pumping planner. */
struct PumpingConfig
{
    /** Local-operation error charged per purification step. */
    double opError = 1e-4;
    /**
     * Stop pumping a grade when the remaining gap to the grade's fixed
     * point falls below this fraction of the initial gap.
     */
    double bandFraction = 0.25;
    /** Cap on pump steps per grade. */
    int maxStepsPerGrade = 24;
    /** Cap on nesting grades. */
    int maxGrades = 40;
};

/** Expected-cost summary for building one purified segment pair. */
struct SegmentPlan
{
    bool feasible = false;
    /** Fidelity actually reached. */
    double finalFidelity = 0.0;
    /** Pump steps chosen per grade (grade 1 first). */
    std::vector<int> stepsPerGrade;
    /**
     * Expected purification operations executed at *each* end island to
     * deliver one pair (a pump step costs one two-qubit gate plus one
     * measurement at each end, in parallel across the two ends).
     */
    double expectedOpsPerEnd = 0.0;
    /** Expected elementary pairs consumed from the segment channel. */
    double expectedElementaryPairs = 1.0;
};

/**
 * Plan nested pumping from elementary fidelity @p elementary_f up to at
 * least @p target_f.
 *
 * Returns an infeasible plan when the target exceeds the operation-noise
 * ceiling or the elementary pair is not purifiable (F <= 1/2).
 */
SegmentPlan planPumping(double elementary_f, double target_f,
                        const PumpingConfig &config);

/**
 * Highest fidelity reachable by unbounded nested pumping from
 * @p elementary_f with the given configuration (the F_max ceiling).
 */
double pumpingCeiling(double elementary_f, const PumpingConfig &config);

} // namespace qla::teleport

#endif // QLA_TELEPORT_PURIFICATION_H
