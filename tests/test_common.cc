/**
 * @file
 * Unit tests for the common substrate: RNG, technology parameters,
 * units.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "common/batched_sampler.h"
#include "common/rng.h"
#include "common/tech_params.h"
#include "common/units.h"

using namespace qla;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 3000; ++i) {
        const auto v = rng.uniformInt(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values reachable
}

TEST(Rng, UniformIntIsUniform)
{
    Rng rng(5);
    std::vector<int> counts(5, 0);
    const int trials = 50000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.uniformInt(5)];
    for (int c : counts)
        EXPECT_NEAR(c, trials / 5.0, 5.0 * std::sqrt(trials));
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(1);
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(11);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.1);
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.1, 0.005);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(3);
    Rng a = parent.split();
    Rng b = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(TechnologyParameters, Table1ExpectedValues)
{
    const auto p = TechnologyParameters::expected();
    EXPECT_DOUBLE_EQ(p.singleGateTime, 1e-6);
    EXPECT_DOUBLE_EQ(p.doubleGateTime, 10e-6);
    EXPECT_DOUBLE_EQ(p.measureTime, 100e-6);
    EXPECT_DOUBLE_EQ(p.splitTime, 10e-6);
    EXPECT_DOUBLE_EQ(p.singleGateError, 1e-8);
    EXPECT_DOUBLE_EQ(p.doubleGateError, 1e-7);
    EXPECT_DOUBLE_EQ(p.measureError, 1e-8);
    EXPECT_DOUBLE_EQ(p.movementErrorPerCell, 1e-6);
}

TEST(TechnologyParameters, Table1CurrentValues)
{
    const auto p = TechnologyParameters::currentGeneration();
    EXPECT_DOUBLE_EQ(p.singleGateError, 1e-4);
    EXPECT_DOUBLE_EQ(p.doubleGateError, 0.03);
    EXPECT_DOUBLE_EQ(p.measureError, 0.01);
    // 0.005/um x 20 um cells.
    EXPECT_DOUBLE_EQ(p.movementErrorPerCell, 0.1);
}

TEST(TechnologyParameters, DerivedChannelBandwidth)
{
    const auto p = TechnologyParameters::expected();
    // Section 2.1: ~100 Mqbps.
    EXPECT_NEAR(p.channelBandwidthQbps(), 1e8, 1e6);
}

TEST(TechnologyParameters, MoveTimeFormula)
{
    const auto p = TechnologyParameters::expected();
    // tau + T x D (Section 2.1) plus turn charges.
    EXPECT_DOUBLE_EQ(p.moveTime(100, 0), 10e-6 + 100 * 0.01e-6);
    EXPECT_DOUBLE_EQ(p.moveTime(100, 2),
                     10e-6 + 100 * 0.01e-6 + 2 * 10e-6);
    EXPECT_DOUBLE_EQ(p.moveTime(0, 0), 0.0);
}

TEST(TechnologyParameters, MoveErrorUnionBound)
{
    const auto p = TechnologyParameters::expected();
    EXPECT_DOUBLE_EQ(p.moveError(100, 1, 2), 1e-6 * 103);
    EXPECT_DOUBLE_EQ(p.moveError(0, 0, 0), 0.0);
    // Clamped at 1.
    auto worst = p;
    worst.movementErrorPerCell = 0.5;
    EXPECT_DOUBLE_EQ(worst.moveError(100, 0, 0), 1.0);
}

TEST(TechnologyParameters, AverageComponentErrorFeedsEq2)
{
    // Section 4.1.2 averages the four expected rates: 2.8e-7.
    const auto p = TechnologyParameters::expected();
    EXPECT_NEAR(p.averageComponentError(), 2.8e-7, 1e-12);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::microseconds(1.0), 1e-6);
    EXPECT_DOUBLE_EQ(units::milliseconds(1.0), 1e-3);
    EXPECT_DOUBLE_EQ(units::nanoseconds(10.0), 1e-8);
    EXPECT_DOUBLE_EQ(units::toHours(3600.0), 1.0);
    EXPECT_DOUBLE_EQ(units::toDays(86400.0), 1.0);
    EXPECT_DOUBLE_EQ(units::squareMicrometersToSquareMeters(1e12), 1.0);
}

// fastLog2 is the inversion kernel behind every geometric gap draw;
// the gap samplers assume it tracks std::log2 closely enough that the
// floor in geometricGapFromU lands on the exact bucket for all but a
// ~2e-6 fraction of draws, and that it stays finite and ordered on the
// extremes Rng::uniform can approach.

TEST(FastLog2, TracksStdLog2AcrossUniformRange)
{
    Rng rng(2024);
    double worst = 0.0;
    for (int i = 0; i < 200000; ++i) {
        const double u = rng.uniform();
        if (u <= 0.0)
            continue;
        worst = std::max(worst, std::abs(fastLog2(u) - std::log2(u)));
    }
    // Series truncation is ~3e-9; 2e-6 is the band at which the floor
    // in the gap inversion could start drifting at p ~ 1e-3.
    EXPECT_LT(worst, 2e-6);
}

TEST(FastLog2, TracksStdLog2AcrossMagnitudes)
{
    // Exercise the exponent path far outside (0, 1): the exponent is
    // exact by construction, so the error band must not grow with |x|.
    Rng rng(77);
    for (int e = -300; e <= 300; e += 17) {
        const double scale = std::ldexp(1.0, e);
        for (int i = 0; i < 64; ++i) {
            const double x = (1.0 + rng.uniform()) * scale;
            EXPECT_NEAR(fastLog2(x), std::log2(x), 2e-6) << "x=" << x;
        }
    }
}

TEST(FastLog2, SubnormalInputs)
{
    // Subnormals carry magnitude in the mantissa alone; the kernel
    // rescales by 2^54 and repays the shift in the exponent.
    const double dmin = std::numeric_limits<double>::denorm_min();
    EXPECT_NEAR(fastLog2(dmin), -1074.0, 2e-6);
    const double nmin = std::numeric_limits<double>::min();
    EXPECT_NEAR(fastLog2(nmin / 4.0), std::log2(nmin) - 2.0, 2e-6);
    EXPECT_NEAR(fastLog2(nmin * 0.75), std::log2(nmin * 0.75), 2e-6);
}

TEST(FastLog2, ApproachingOneFromBelow)
{
    // u -> 1- is the "gap of 1" end of the inversion: log2(u) -> -0,
    // and the result must stay <= 0 so the floor cannot produce a gap
    // below 1.
    for (double u = 1.0 - 1e-3; u < 1.0;
         u = std::nextafter((1.0 + u) / 2.0, 1.0)) {
        const double got = fastLog2(u);
        EXPECT_LE(got, 0.0) << "u=" << u;
        EXPECT_NEAR(got, std::log2(u), 2e-6) << "u=" << u;
        if (u == std::nextafter(1.0, 0.0))
            break;
    }
    EXPECT_EQ(fastLog2(1.0), 0.0);
}

TEST(FastLog2, GapInversionEdgeCases)
{
    const double inv = geometricInvLog2q(1e-3);
    // u = 0 is never produced by Rng::uniform, but the clamp must hold.
    EXPECT_EQ(geometricGapFromU(0.0, inv), kMaxGeometricGap);
    // The smallest positive double still inverts to a finite gap at
    // p = 1e-3: log2(denorm_min) = -1074 exactly, so pin the bucket.
    const double dmin = std::numeric_limits<double>::denorm_min();
    EXPECT_EQ(geometricGapFromU(dmin, inv),
              1 + static_cast<std::int64_t>(std::floor(-1074.0 * inv)));
    // At vanishing p the same u overflows past the ceiling and clamps.
    EXPECT_EQ(geometricGapFromU(dmin, geometricInvLog2q(1e-12)),
              kMaxGeometricGap);
    // u -> 1- gives the minimum gap of 1.
    EXPECT_EQ(geometricGapFromU(std::nextafter(1.0, 0.0), inv), 1);
}

TEST(GeometricGapBlock, BitIdenticalToScalarInversion)
{
    // The determinism contract lets samplers pick scalar or batched
    // refill per call, which is only sound if the block kernel is the
    // same expression tree: exact equality, not a tolerance.
    Rng rng(31337);
    for (const double p : {1e-5, 1e-4, 1e-3, 8e-3, 0.1, 0.5}) {
        const double inv = geometricInvLog2q(p);
        std::vector<double> u(257);
        for (double &v : u)
            v = rng.uniform();
        u[0] = std::numeric_limits<double>::denorm_min();
        u[1] = std::nextafter(1.0, 0.0);
        u[2] = std::numeric_limits<double>::min();
        std::vector<std::int64_t> block(u.size());
        geometricGapBlock(u.data(), u.size(), inv, block.data());
        for (std::size_t i = 0; i < u.size(); ++i)
            ASSERT_EQ(block[i], geometricGapFromU(u[i], inv))
                << "p=" << p << " i=" << i;
    }
}
