/**
 * @file
 * Logical-tile placement over the island mesh (paper Section 4.2/5).
 *
 * The QLA floor plan is a grid of logical-qubit tiles with a
 * teleportation island every `tilesPerIslandX` tiles in x and every tile
 * in y (the 100-cell separation puts an island every third logical
 * qubit). The placement layer assigns each program entity -- a circuit
 * qubit or a transient Toffoli-gadget ancilla -- to exactly one tile,
 * keeps the entity->tile map a bijection onto occupied tiles, and
 * implements the drift optimization: after a two-qubit interaction the
 * teleported qubit stays near its partner instead of being moved back,
 * so subsequent traffic shortens.
 */

#ifndef QLA_NETWORK_PLACEMENT_H
#define QLA_NETWORK_PLACEMENT_H

#include <cstdint>
#include <optional>
#include <vector>

#include <functional>

#include "arch/region.h"
#include "circuit/circuit.h"
#include "common/rng.h"
#include "network/mesh.h"

namespace qla::network {

/** Position of a logical-qubit tile in the tile grid. */
struct TileCoord
{
    int x = 0; ///< Tile column (tilesPerIslandX tiles per island in x).
    int y = 0; ///< Tile row (one tile row per island row).

    bool operator==(const TileCoord &o) const
    {
        return x == o.x && y == o.y;
    }
};

/** Identifies a placed program entity (qubit or gadget ancilla). */
using EntityId = std::size_t;

inline constexpr EntityId kNoEntity = ~EntityId{0};

/** Predicate restricting a tile search to a subset of the grid (e.g.
 *  one CQLA region). Must be pure and deterministic. */
using TileFilter = std::function<bool(const TileCoord &)>;

/** Initial-placement policies. */
enum class PlacementStrategy : std::uint8_t
{
    /**
     * Interaction-affinity order (see affinityOrder): a recency-greedy
     * linear arrangement of the circuit's interaction graph, laid out
     * along a Hilbert walk of the tile grid so frequently interacting
     * qubits land on nearby islands.
     */
    Affinity,
    /** Seeded uniform shuffle of the qubits over the same Hilbert
     *  walk. */
    Random,
};

/**
 * Bijective entity->tile occupancy map over the tile grid of an island
 * mesh.
 *
 * The tile grid is `meshWidth * tilesPerIslandX` wide and `meshHeight`
 * tall; tile (tx, ty) belongs to island (tx / tilesPerIslandX, ty). All
 * mutators preserve the invariant that every entity occupies exactly one
 * tile and every tile holds at most one entity (checked by
 * isBijective(), exercised by the drift property tests).
 */
class TilePlacement
{
  public:
    TilePlacement(int mesh_width, int mesh_height, int tiles_per_island_x);

    int tileWidth() const { return tile_width_; }
    int tileHeight() const { return tile_height_; }
    int tilesPerIslandX() const { return tiles_per_island_x_; }
    std::size_t totalTiles() const
    {
        return static_cast<std::size_t>(tile_width_) * tile_height_;
    }
    std::size_t occupiedTiles() const { return occupied_; }

    /** Island hosting a tile. */
    IslandCoord islandOf(const TileCoord &t) const
    {
        return {t.x / tiles_per_island_x_, t.y};
    }

    /** Island hosting a placed entity. */
    IslandCoord islandOf(EntityId entity) const
    {
        return islandOf(tileOf(entity));
    }

    bool inBounds(const TileCoord &t) const
    {
        return t.x >= 0 && t.x < tile_width_ && t.y >= 0
            && t.y < tile_height_;
    }

    /** Tile of a placed entity (fatal if unplaced). */
    TileCoord tileOf(EntityId entity) const;

    /** True when @p entity currently occupies a tile. */
    bool isPlaced(EntityId entity) const;

    /** Entity on a tile, or kNoEntity. */
    EntityId occupantOf(const TileCoord &t) const;

    /** Place @p entity on a free tile (fatal if occupied/placed). */
    void assign(EntityId entity, const TileCoord &tile);

    /** Remove @p entity from its tile. */
    void release(EntityId entity);

    /** Move a placed entity onto a free tile. */
    void moveTo(EntityId entity, const TileCoord &tile);

    /**
     * Nearest free tile to @p near (deterministic: increasing Manhattan
     * distance, ties broken by scan order). Empty when the grid is full.
     */
    std::optional<TileCoord> nearestFree(const TileCoord &near) const;

    /**
     * nearestFree restricted to tiles where @p eligible returns true
     * (same deterministic ring walk). Used by the CQLA cache model to
     * keep fetches inside the compute region and evictions inside the
     * memory region.
     */
    std::optional<TileCoord> nearestFree(const TileCoord &near,
                                         const TileFilter &eligible) const;

    /**
     * Drift move: relocate @p entity to the free tile nearest to
     * @p partner's tile -- ideally on the partner's island, so the next
     * interaction of the pair is island-local. No-op when the entity
     * already shares the partner's island or no free tile exists.
     * @return true when the entity moved.
     */
    bool driftToward(EntityId entity, EntityId partner);

    /** driftToward restricted to destination tiles where @p eligible
     *  returns true (so a drifting qubit never leaves its region). */
    bool driftToward(EntityId entity, EntityId partner,
                     const TileFilter &eligible);

    /** Every entity on exactly one tile, every tile at most one entity. */
    bool isBijective() const;

    /** Placed entity ids in increasing order (for deterministic scans). */
    std::vector<EntityId> placedEntities() const;

  private:
    std::size_t tileIndex(const TileCoord &t) const
    {
        return static_cast<std::size_t>(t.y) * tile_width_ + t.x;
    }

    int tile_width_;
    int tile_height_;
    int tiles_per_island_x_;
    std::vector<EntityId> occupant_;          // per tile
    std::vector<std::optional<TileCoord>> tiles_; // per entity id
    std::size_t occupied_ = 0;
};

/**
 * Initial placement of @p circuit's qubits onto @p placement (which must
 * be empty): qubits ordered per @p strategy, then assigned along a
 * Hilbert walk of the tile grid (hilbertTileOrder) so order-adjacent
 * qubits stay close in both grid dimensions. @p stride spaces the
 * qubits out (qubit j lands on walk position j * stride), interleaving
 * free tiles so gadget ancilla blocks can allocate -- and qubits can
 * drift -- right next to their operands instead of past the edge of a
 * densely packed data block. @p rng drives the Random strategy (and is
 * unused by Affinity, which is fully deterministic).
 */
void placeProgramQubits(TilePlacement &placement,
                        const circuit::QuantumCircuit &circuit,
                        PlacementStrategy strategy, Rng rng,
                        int stride = 1);

/**
 * Interaction-affinity qubit order used by PlacementStrategy::Affinity
 * (exposed for tests): a recency-weighted greedy linear arrangement of
 * the two-qubit/Toffoli interaction graph -- each step appends the
 * unplaced qubit with the largest decayed interaction weight to the
 * recently placed ones, falling back to the heaviest unplaced qubit.
 * Fully deterministic (index tie-breaks).
 */
std::vector<std::size_t> affinityOrder(
    const circuit::QuantumCircuit &circuit);

/**
 * The tile-grid visit order used by placeProgramQubits: a Hilbert curve
 * over the bounding power-of-2 square restricted to the grid, so
 * positions close in the 1D order are close in both grid dimensions.
 */
std::vector<TileCoord> hilbertTileOrder(int width, int height);

/**
 * Mean reuse distance of every circuit qubit: the average gap (in gate
 * indices) between a qubit's consecutive uses in the gate DAG. Qubits
 * used at most once get the circuit length (maximally cold). This is
 * the coldness metric of the CQLA placement: small distance = hot
 * (reused soon, belongs in compute), large = cold (belongs in memory).
 */
std::vector<double> qubitReuseDistance(
    const circuit::QuantumCircuit &circuit);

/**
 * Region-aware initial placement (CQLA): the hottest qubits by
 * qubitReuseDistance -- as many as fit half the compute region's
 * Hilbert walk -- go to compute tiles with @p computeStride spacing
 * (room for gadget ancillas); the cold remainder packs densely
 * (stride 1) along the memory region's walk. With a uniform @p regions
 * this defers to placeProgramQubits byte-for-byte. Ties in coldness
 * break by qubit index; @p rng only drives the Random strategy inside
 * the uniform fallback.
 */
void placeProgramQubitsRegioned(TilePlacement &placement,
                                const circuit::QuantumCircuit &circuit,
                                const arch::RegionMap &regions,
                                PlacementStrategy strategy, Rng rng,
                                int computeStride = 1);

} // namespace qla::network

#endif // QLA_NETWORK_PLACEMENT_H
