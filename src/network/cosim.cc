#include "network/cosim.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "sim/shot_scheduler.h"

namespace qla::network {

namespace {

/** SplitMix64 finalizer for mixing run and fault seeds. */
std::uint64_t
mixSeed(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** One unsatisfied EPR demand of an active gate. */
struct PendingDemand
{
    std::size_t gate = 0;
    int relWindow = 0;    ///< Gate-relative window consuming the pairs.
    std::size_t slot = 0; ///< Demand index within that window.
    EprDemand demand;     ///< .pairs holds the *remaining* pairs.
    int age = 0;
    /** Routing priority key, refreshed each window before sorting. */
    int urgency = 0;
    /** Below-threshold rejections so far (retry-budget consumption). */
    int attempts = 0;
    /** Absolute window before which the demand sits out (backoff). */
    std::uint64_t backoffUntil = 0;
};

/** A gate occupying its operands (and gadget ancilla tiles). */
struct ActiveGate
{
    std::size_t id = 0;
    /** False while pre-activated: dependencies are in their final
     *  prefetch windows, so EPR demands are already being routed ("EPR
     *  pairs are prefetched while the consuming qubits are still in
     *  error correction") but no computation windows commit yet. */
    bool started = false;
    int progress = 0;   ///< Windows committed so far.
    int emittedUpTo = 0; ///< Relative windows with demands issued.
    bool stalledEver = false;
    /** Successors were told this gate is in its final prefetch span. */
    bool nearDoneNotified = false;
    /** Had at least one demand abandoned (degraded execution). */
    bool degraded = false;
    /** Fallback penalty still to serve, in stall windows: charged when
     *  a demand of this gate is abandoned, worked off one window per
     *  advance before any progress can commit. */
    int penaltyWindows = 0;
    /** Operands classified against the memory hierarchy (done once,
     *  when the gate first emits demands). */
    bool cacheChecked = false;
    /** Code-conversion windows still to serve after a cache miss
     *  fetched an operand encoded below the compute level; worked off
     *  after delivery, before progress commits. */
    int conversionWindows = 0;
    /** Pending mesh demands per emitted relative window. */
    std::vector<int> undeliveredFor;
    /** Interactions per emitted relative window (drift applies when the
     *  window commits). */
    std::vector<std::vector<MemberInteraction>> interactionsFor;
    std::vector<EntityId> ancillas;
};

/**
 * The per-run engine: owns all mutable co-simulation state and the
 * window event chain.
 */
class CoSimEngine
{
  public:
    CoSimEngine(const ProgramWorkload &program, const CoSimConfig &config,
                const MeshExtent &extent, const WindowProbeFn &probe)
        : program_(program), config_(config), probe_(probe),
          mesh_(extent.width, extent.height, config.bandwidth,
                slotsForWindow()),
          router_(config.detourRadius),
          placement_(extent.width, extent.height,
                     program.config().tilesPerIslandX),
          deps_remaining_(program.gates().size())
    {
        // Spread the data qubits out so every neighborhood keeps free
        // tiles for gadget-ancilla blocks and drift (capped: scattering
        // them over a huge mesh would stretch data-data routes).
        const int stride = static_cast<int>(std::clamp<std::size_t>(
            placement_.totalTiles()
                / std::max<std::size_t>(1,
                                        program_.circuit().numQubits()),
            1,
            2 * static_cast<std::size_t>(
                    program.config().tilesPerIslandX)));
        // PR 8 memory hierarchy. With computeFraction >= 1 the region
        // map is uniform, the regioned placement defers to the uniform
        // one byte-for-byte, and every cache hook below is bypassed.
        hierarchy_on_ = config_.memory.enabled();
        regions_ = arch::RegionMap(extent.width, extent.height,
                                   program.config().tilesPerIslandX,
                                   config_.memory.computeFraction);
        placeProgramQubitsRegioned(placement_, program_.circuit(),
                                   regions_, config_.placement,
                                   Rng(config_.seed), stride);
        report_.computeTiles = regions_.computeTiles();
        report_.memoryTiles = regions_.memoryTiles();
        if (hierarchy_on_) {
            mem_params_ = arch::RegionCodeParams::memoryAtLevel(
                config_.memory.memoryCodeLevel);
            fetch_pairs_ = config_.memory.pairsPerFetch
                ? config_.memory.pairsPerFetch
                : mem_params_.teleportPairs;
            // Belady eviction needs each data qubit's next use: the
            // gate lists are already in increasing id order.
            uses_of_.resize(program_.circuit().numQubits());
            for (std::size_t i = 0; i < program_.gates().size(); ++i)
                for (const std::size_t q : program_.gates()[i].qubits)
                    uses_of_[q].push_back(i);
        }
        far_deps_.resize(program_.gates().size());
        for (std::size_t i = 0; i < program_.gates().size(); ++i) {
            deps_remaining_[i] = program_.gates()[i].dependencyCount;
            far_deps_[i] = deps_remaining_[i];
            if (deps_remaining_[i] == 0)
                ready_.push_back(i);
        }
        warmup_remaining_ = std::max(0, config_.prefetchWindows);
        report_.perGate.resize(program_.gates().size());

        // PR 7 noisy-interconnect machinery. All of it is bypassed on
        // the clean path: zero fault rates and an ideal fidelity model
        // draw no randomness and leave every routing decision
        // bit-identical to the fault-free engine.
        if (config_.linkFaults.any()) {
            LinkFaultConfig faults = config_.linkFaults;
            faults.seed = mixSeed(faults.seed ^ mixSeed(config_.seed));
            mesh_.setLinkFaults(faults);
            loss_rate_ = faults.pairLossRate;
        }
        fidelity_on_ = config_.fidelity.enabled()
            || config_.linkFaults.burstRate > 0.0;
        noisy_ = fidelity_on_ || config_.linkFaults.any();
        if (fidelity_on_) {
            link_plan_ = purifiedLinkPlan(config_.fidelity);
            // Longest route the router can produce: dimension-ordered
            // distance plus a full detour excursion both ways.
            const int max_hops = extent.width + extent.height
                + 2 * (config_.detourRadius + 1);
            path_fidelity_ = PathFidelityTable(
                link_plan_.linkFidelity, config_.fidelity.opError,
                max_hops);
        }
        // Transit-loss draws are consumed in the deterministic sorted
        // routing order, so one engine-owned stream suffices.
        loss_rng_ = Rng(mixSeed(config_.seed ^ 0x10551055c0c0c0c0ULL));
    }

    CoSimReport run()
    {
        report_.criticalPathWindows = program_.criticalPathWindows();
        if (program_.gates().empty()) {
            report_.completed = true;
            return report_;
        }
        events_.schedule(0.0, [this] { onWindowBoundary(); });
        events_.run();
        report_.windows = mesh_.windowsElapsed()
            - report_.warmupWindows;
        report_.makespan = static_cast<double>(report_.windows)
            * config_.window;
        report_.utilization = mesh_.aggregateUtilization();
        report_.backoffReroutes = route_stats_.backoffReroutes;
        report_.averageRouteLength = routed_count_
            ? route_length_sum_ / static_cast<double>(routed_count_)
            : 0.0;
        return report_;
    }

  private:
    std::uint64_t slotsForWindow() const
    {
        SchedulerConfig sc;
        sc.window = config_.window;
        sc.purifiedPairServiceTime = config_.purifiedPairServiceTime;
        const std::uint64_t slots = slotsPerChannel(sc);
        if (!config_.fidelity.enabled())
            return slots;
        // Purification traffic competes with program traffic: pumping a
        // pair to the level target consumes expectedElementaryPairs
        // channel transports, shrinking the purified-pair capacity.
        return purifiedSlotsPerChannel(slots,
                                       purifiedLinkPlan(config_.fidelity));
    }

    EntityId entityOf(const ActiveGate &g, const GateMember &m) const
    {
        if (m.isAncilla)
            return g.ancillas[m.index];
        return program_.gates()[g.id].qubits[m.index];
    }

    /** Every window boundary: start, emit, route, then same-instant
     *  gate-advance events (FIFO keeps gate order) and a window-close
     *  event that advances the mesh clock and schedules the successor
     *  boundary. */
    void onWindowBoundary()
    {
        if (warmup_remaining_ > 0) {
            // Initialization overlap: the initially ready gates'
            // demands prefetch while the logical qubits are still
            // being encoded -- routing-only windows, no computation.
            preActivateReady();
        } else {
            startReadyGates();
            preActivateImminent();
        }
        emitDemands();
        routeWindow();
        if (warmup_remaining_ == 0) {
            for (const ActiveGate &g : active_) {
                if (!g.started)
                    continue;
                const std::size_t id = g.id;
                events_.schedule(events_.now(),
                                 [this, id] { advanceGate(id); });
            }
        }
        events_.schedule(events_.now(), [this] { closeWindow(); });
    }

    /** Warmup variant of startReadyGates: pre-activate the ready gates
     *  (demands flow, computation does not start) and keep them ready. */
    void preActivateReady()
    {
        for (const std::size_t id : ready_) {
            if (isActive(id))
                continue;
            const LogicalGate &gate = program_.gates()[id];
            ActiveGate active;
            active.id = id;
            if (gate.ancillaCount > 0
                && !allocateAncillas(gate, active.ancillas))
                continue; // retried next window
            insertActive(std::move(active));
        }
    }

    /** Position of gate @p id in the id-sorted active_ vector (or the
     *  insertion point when absent). The single place that encodes the
     *  ordering invariant. */
    std::vector<ActiveGate>::iterator lowerBoundById(std::size_t id)
    {
        return std::lower_bound(
            active_.begin(), active_.end(), id,
            [](const ActiveGate &g, std::size_t v) { return g.id < v; });
    }

    bool isActive(std::size_t id)
    {
        const auto it = lowerBoundById(id);
        return it != active_.end() && it->id == id;
    }

    void startReadyGates()
    {
        std::vector<std::size_t> still_ready;
        for (const std::size_t id : ready_) {
            if (isActive(id)) {
                // Pre-activated while its dependencies finished: the
                // demands are in flight; computation starts now.
                ActiveGate &g = gateById(id);
                g.started = true;
                notifyIfNearDone(g);
                continue;
            }
            const LogicalGate &gate = program_.gates()[id];
            ActiveGate active;
            active.id = id;
            active.started = true;
            if (gate.ancillaCount > 0
                && !allocateAncillas(gate, active.ancillas)) {
                // The gate is runnable but the mesh has no room for
                // its gadget ancillas: a stall, charged to its own
                // ledger so undersized meshes are diagnosable.
                ++report_.allocationStallWindows;
                still_ready.push_back(id); // retry next window
                continue;
            }
            insertActive(std::move(active));
            notifyIfNearDone(gateById(id));
        }
        ready_ = std::move(still_ready);
    }

    void insertActive(ActiveGate gate)
    {
        active_.insert(lowerBoundById(gate.id), std::move(gate));
    }

    /** Gates whose every dependency is inside its final prefetch
     *  windows pre-activate: their EPR demands start routing before the
     *  gate itself can run. */
    void preActivateImminent()
    {
        if (config_.prefetchWindows <= 0)
            return;
        std::vector<std::size_t> retry;
        std::sort(imminent_.begin(), imminent_.end());
        for (const std::size_t id : imminent_) {
            if (isActive(id) || deps_remaining_[id] == 0)
                continue; // started (or about to) through the ready path
            const LogicalGate &gate = program_.gates()[id];
            ActiveGate active;
            active.id = id;
            if (gate.ancillaCount > 0
                && !allocateAncillas(gate, active.ancillas)) {
                retry.push_back(id);
                continue;
            }
            insertActive(std::move(active));
        }
        imminent_ = std::move(retry);
    }

    /** Called when @p g starts or commits a window: once its remaining
     *  windows fit inside the prefetch horizon, successors may begin
     *  prefetching their own pairs. */
    void notifyIfNearDone(ActiveGate &g)
    {
        if (g.nearDoneNotified || config_.prefetchWindows <= 0)
            return;
        const int remaining =
            program_.gates()[g.id].durationWindows - g.progress;
        if (remaining > config_.prefetchWindows)
            return;
        g.nearDoneNotified = true;
        for (const std::size_t s : program_.gates()[g.id].successors)
            if (--far_deps_[s] == 0 && deps_remaining_[s] > 0)
                imminent_.push_back(s);
    }

    /** Allocate the gadget's ancilla tiles next to its target operand;
     *  all-or-nothing. */
    bool allocateAncillas(const LogicalGate &gate,
                          std::vector<EntityId> &out)
    {
        // Anchor at the operand centroid: finish-phase interactions
        // couple every operand to the ancilla block, so the worst
        // operand distance is what stalls gates with far-apart operands.
        TileCoord anchor{0, 0};
        for (const std::size_t q : gate.qubits) {
            const TileCoord t = placement_.tileOf(q);
            anchor.x += t.x;
            anchor.y += t.y;
        }
        anchor.x /= static_cast<int>(gate.qubits.size());
        anchor.y /= static_cast<int>(gate.qubits.size());
        // Ancilla factories exist only in the compute region (the point
        // of the CQLA split), so gadget tiles must allocate there.
        const TileFilter compute_only = [this](const TileCoord &t) {
            return inCompute(t);
        };
        for (int i = 0; i < gate.ancillaCount; ++i) {
            const auto tile = hierarchy_on_
                ? placement_.nearestFree(anchor, compute_only)
                : placement_.nearestFree(anchor);
            if (!tile) {
                for (const EntityId e : out)
                    releaseAncilla(e);
                out.clear();
                return false;
            }
            const EntityId entity = acquireAncillaEntity();
            placement_.assign(entity, *tile);
            out.push_back(entity);
        }
        return true;
    }

    EntityId acquireAncillaEntity()
    {
        if (!free_ancilla_slots_.empty()) {
            std::pop_heap(free_ancilla_slots_.begin(),
                          free_ancilla_slots_.end(),
                          std::greater<>{});
            const std::size_t slot = free_ancilla_slots_.back();
            free_ancilla_slots_.pop_back();
            return program_.circuit().numQubits() + slot;
        }
        return program_.circuit().numQubits() + next_ancilla_slot_++;
    }

    void releaseAncilla(EntityId entity)
    {
        placement_.release(entity);
        const std::size_t slot = entity - program_.circuit().numQubits();
        free_ancilla_slots_.push_back(slot);
        std::push_heap(free_ancilla_slots_.begin(),
                       free_ancilla_slots_.end(), std::greater<>{});
    }

    void emitDemands()
    {
        for (ActiveGate &g : active_) {
            const int duration =
                program_.gates()[g.id].durationWindows;
            const int horizon = std::min(
                duration, g.progress + 1 + config_.prefetchWindows);
            while (g.emittedUpTo < horizon) {
                const int rel = g.emittedUpTo++;
                auto interactions = program_.interactionsForWindow(
                    g.id, rel);
                g.undeliveredFor.push_back(0);
                // Cache classification (PR 8): the first emitted window
                // fetches missing operands before their islands are
                // read, so the gate's own demands target the
                // post-fetch placement.
                std::size_t slot =
                    rel == 0 ? serviceCacheMisses(g) : 0;
                for (const MemberInteraction &inter : interactions) {
                    ++report_.interactions;
                    const IslandCoord src = placement_.islandOf(
                        entityOf(g, inter.mover));
                    const IslandCoord dst = placement_.islandOf(
                        entityOf(g, inter.target));
                    emitOne(g, rel, slot++, src, dst,
                            program_.config().pairsPerInteraction);
                    // Without drift the mover teleports straight back:
                    // round-trip traffic on the reverse links.
                    if (!config_.driftOptimization)
                        emitOne(g, rel, slot++, dst, src,
                                program_.config().pairsPerInteraction);
                }
                g.interactionsFor.push_back(std::move(interactions));
            }
        }
    }

    void emitOne(ActiveGate &g, int rel, std::size_t slot,
                 const IslandCoord &src, const IslandCoord &dst,
                 std::uint64_t pairs)
    {
        report_.pairsRequested += pairs;
        if (src == dst) {
            report_.pairsLocal += pairs;
            return;
        }
        PendingDemand pd;
        pd.gate = g.id;
        pd.relWindow = rel;
        pd.slot = slot;
        pd.demand = EprDemand{src, dst, pairs, g.id};
        pending_.push_back(pd);
        ++g.undeliveredFor[static_cast<std::size_t>(rel)];
    }

    bool inCompute(const TileCoord &t) const
    {
        return regions_.tileKind(t.x) == arch::RegionKind::Compute;
    }

    /** True when @p q is an operand of an active gate other than
     *  @p gate (its tile must not move under that gate). */
    bool pinnedByOther(EntityId q, std::size_t gate) const
    {
        for (const ActiveGate &g : active_) {
            if (g.id == gate)
                continue;
            const auto &qs = program_.gates()[g.id].qubits;
            if (std::find(qs.begin(), qs.end(), q) != qs.end())
                return true;
        }
        return false;
    }

    /**
     * The cache model (PR 8): classify every data-qubit operand of
     * @p g once, on its first demand emission. Compute-resident
     * operands are hits (a local window). A memory-resident operand is
     * a miss: teleport it to a free compute tile -- evicting the
     * compute-resident qubit with the farthest next use when the
     * region is full -- and gate the gate's first window on the fetch
     * (and write-back) EPR delivery, so misses ride the same
     * fidelity-priced router as program traffic and degrade under
     * faults. When no compute tile can be freed the miss executes in
     * place (graceful degradation, no relocation).
     * @return demand slots consumed in the gate's relative window 0.
     */
    std::size_t serviceCacheMisses(ActiveGate &g)
    {
        if (!hierarchy_on_ || g.cacheChecked)
            return 0;
        g.cacheChecked = true;
        std::size_t slot = 0;
        bool fetched_below_level = false;
        for (const std::size_t q : program_.gates()[g.id].qubits) {
            ++report_.operandTouches;
            if (inCompute(placement_.tileOf(q))) {
                ++report_.memHits;
                continue;
            }
            ++report_.memMisses;
            if (mem_params_.codeLevel < 2)
                fetched_below_level = true;
            fetchOperand(g, q, slot);
        }
        if (fetched_below_level)
            // Re-encode the fetched operands up to the compute level;
            // transversal conversions of one gate's operands proceed
            // in parallel, so the charge is per gate, not per miss.
            g.conversionWindows = std::max(
                g.conversionWindows, config_.memory.conversionWindows);
        return slot;
    }

    /** Serve one miss: relocate @p q into the compute region (evicting
     *  if needed) and emit the fetch demand into @p g's window 0. */
    void fetchOperand(ActiveGate &g, EntityId q, std::size_t &slot)
    {
        if (pinnedByOther(q, g.id)) {
            // Another active gate is computing on it where it stands
            // (it had an in-place miss of its own): don't move it.
            ++report_.memInPlaceMisses;
            return;
        }
        const TileFilter compute_only = [this](const TileCoord &t) {
            return inCompute(t);
        };
        // Aim next to the gate's compute-resident operands; a gate
        // whose operands are all in memory fetches to the boundary
        // column nearest its row.
        TileCoord anchor{0, 0};
        int resident = 0;
        for (const std::size_t other : program_.gates()[g.id].qubits) {
            const TileCoord t = placement_.tileOf(other);
            if (other != q && inCompute(t)) {
                anchor.x += t.x;
                anchor.y += t.y;
                ++resident;
            }
        }
        if (resident > 0) {
            anchor.x /= resident;
            anchor.y /= resident;
        } else {
            anchor = TileCoord{regions_.computeIslandColumns()
                                       * placement_.tilesPerIslandX()
                                   - 1,
                               placement_.tileOf(q).y};
        }
        auto tile = placement_.nearestFree(anchor, compute_only);
        if (!tile && evictColdest(g, slot))
            tile = placement_.nearestFree(anchor, compute_only);
        if (!tile) {
            ++report_.memInPlaceMisses;
            return;
        }
        const IslandCoord src = placement_.islandOf(q);
        placement_.moveTo(q, *tile);
        report_.fetchPairsRequested += fetch_pairs_;
        emitOne(g, 0, slot++, src, placement_.islandOf(q),
                fetch_pairs_);
    }

    /**
     * Evict the compute-resident data qubit with the farthest next use
     * (Belady; next use read off the precomputed per-qubit gate lists,
     * ties to the smallest qubit id) that no active gate is holding,
     * moving it to the nearest free memory tile and emitting the
     * write-back demand into @p g's window 0 -- the fetch cannot land
     * until the tile actually frees.
     * @return true when a victim was written back.
     */
    bool evictColdest(ActiveGate &g, std::size_t &slot)
    {
        const std::size_t n = program_.circuit().numQubits();
        std::vector<bool> pinned(n, false);
        for (const ActiveGate &a : active_)
            for (const std::size_t q : program_.gates()[a.id].qubits)
                pinned[q] = true;
        constexpr std::uint64_t kNever = ~std::uint64_t{0};
        EntityId victim = kNoEntity;
        std::uint64_t victim_next = 0;
        for (std::size_t q = 0; q < n; ++q) {
            if (pinned[q] || !placement_.isPlaced(q)
                || !inCompute(placement_.tileOf(q)))
                continue;
            const auto &uses = uses_of_[q];
            const auto it = std::upper_bound(uses.begin(), uses.end(),
                                             g.id);
            const std::uint64_t next =
                it == uses.end() ? kNever : *it;
            if (victim == kNoEntity || next > victim_next) {
                victim = q;
                victim_next = next;
            }
        }
        if (victim == kNoEntity)
            return false;
        const TileFilter memory_only = [this](const TileCoord &t) {
            return !inCompute(t);
        };
        const auto tile = placement_.nearestFree(
            placement_.tileOf(victim), memory_only);
        if (!tile)
            return false; // memory full too: caller degrades in place
        const IslandCoord src = placement_.islandOf(victim);
        placement_.moveTo(victim, *tile);
        ++report_.memEvictions;
        report_.writebackPairsRequested += fetch_pairs_;
        emitOne(g, 0, slot++, src, placement_.islandOf(victim),
                fetch_pairs_);
        return true;
    }

    void routeWindow()
    {
        // Most urgent first: windows closest to consumption, then
        // oldest, then longest routes, then (gate, window, slot) to pin
        // the order fully. Urgency is precomputed once per window; the
        // comparator must stay lookup-free.
        for (PendingDemand &pd : pending_) {
            const ActiveGate &g = gateById(pd.gate);
            // Pre-active gates cannot consume this window; their
            // demands yield to every started gate's current window.
            pd.urgency = g.started ? pd.relWindow - g.progress
                                   : pd.relWindow + 1;
        }
        std::sort(pending_.begin(), pending_.end(),
                  [](const PendingDemand &a, const PendingDemand &b) {
                      if (a.urgency != b.urgency)
                          return a.urgency < b.urgency;
                      if (a.age != b.age)
                          return a.age > b.age;
                      const int da = islandDistance(a.demand.source,
                                                    a.demand.destination);
                      const int db = islandDistance(b.demand.source,
                                                    b.demand.destination);
                      if (da != db)
                          return da > db;
                      if (a.gate != b.gate)
                          return a.gate < b.gate;
                      if (a.relWindow != b.relWindow)
                          return a.relWindow < b.relWindow;
                      return a.slot < b.slot;
                  });
        const std::uint64_t now = mesh_.windowsElapsed();
        std::vector<PendingDemand> still_pending;
        for (PendingDemand &pd : pending_) {
            if (pd.backoffUntil > now) {
                // Sitting out a retry backoff: no routing attempt, the
                // channel breathes while the link (hopefully) recovers.
                ++report_.retryBackoffWindows;
                still_pending.push_back(pd);
                continue;
            }
            RouteDelivery delivery;
            const std::uint64_t moved = router_.routePairs(
                mesh_, pd.demand, pd.demand.pairs, route_stats_,
                noisy_ ? &delivery : nullptr);
            std::uint64_t usable = moved;
            bool abandon = false;
            if (noisy_)
                usable = processDelivery(pd, delivery, abandon);
            report_.pairsRoutedOnMesh += usable;
            pd.demand.pairs -= usable;
            if (pd.demand.pairs == 0) {
                route_length_sum_ += islandDistance(
                    pd.demand.source, pd.demand.destination);
                ++routed_count_;
                --gateById(pd.gate).undeliveredFor[
                    static_cast<std::size_t>(pd.relWindow)];
            } else if (abandon) {
                abandonDemand(pd);
            } else {
                still_pending.push_back(pd);
            }
        }
        pending_ = std::move(still_pending);
    }

    /**
     * Price one routed delivery under faults and finite fidelity:
     * subtract transit losses, reject bundles whose end-to-end fidelity
     * (swap-composed over the path, degraded per bursting link) falls
     * below the delivery threshold, and track the retry budget. Lost
     * and rejected pairs count as dropped plus a replacement request,
     * keeping the conservation ledger monotone.
     * @return pairs of the grab set that are actually consumable.
     */
    std::uint64_t processDelivery(PendingDemand &pd,
                                  const RouteDelivery &delivery,
                                  bool &abandon)
    {
        std::uint64_t usable = 0;
        bool rejected_any = false;
        for (const PathGrab &grab : delivery.grabs) {
            std::uint64_t survivors = grab.pairs;
            if (loss_rate_ > 0.0) {
                const std::uint64_t lost = sampleLostPairs(
                    loss_rng_, grab.pairs, loss_rate_, grab.hops);
                survivors -= lost;
                report_.pairsLostInTransit += lost;
                report_.pairsDropped += lost;
                report_.pairsRequested += lost; // replacement shipment
            }
            if (survivors == 0)
                continue;
            double fidelity = 1.0;
            if (fidelity_on_) {
                fidelity = path_fidelity_.atHops(grab.hops);
                if (grab.burstLinks > 0)
                    fidelity = PathFidelityTable::withBursts(
                        fidelity, grab.burstLinks,
                        config_.linkFaults.burstDepolarization);
            }
            if (fidelity < config_.fidelity.deliveryThreshold) {
                report_.pairsRejectedFidelity += survivors;
                report_.pairsDropped += survivors;
                report_.pairsRequested += survivors; // re-request
                rejected_any = true;
                continue;
            }
            usable += survivors;
            if (fidelity_on_) {
                report_.fidelityPairs += survivors;
                report_.deliveredFidelitySum +=
                    fidelity * static_cast<double>(survivors);
                report_.deliveredFidelityMin =
                    std::min(report_.deliveredFidelityMin, fidelity);
            }
        }
        abandon = false;
        if (rejected_any) {
            ++report_.retryAttempts;
            ++report_.perGate[pd.gate].retryAttempts;
            ++pd.attempts;
            if (pd.attempts > config_.fidelity.retryBudget) {
                abandon = true;
            } else {
                // Exponential backoff, capped at 8x the base.
                const int shift = std::min(pd.attempts - 1, 3);
                pd.backoffUntil = mesh_.windowsElapsed()
                    + (static_cast<std::uint64_t>(
                           std::max(1, config_.fidelity.backoffWindows))
                       << shift);
            }
        }
        return usable;
    }

    /** Retry budget exhausted: give up on the demand's remaining pairs
     *  and charge the gate the fallback penalty (served as stall
     *  windows before any further progress). */
    void abandonDemand(PendingDemand &pd)
    {
        const std::uint64_t remaining = pd.demand.pairs;
        report_.pairsAbandoned += remaining;
        ++report_.demandsAbandoned;
        report_.perGate[pd.gate].pairsAbandoned += remaining;
        ActiveGate &g = gateById(pd.gate);
        if (!g.degraded) {
            g.degraded = true;
            ++report_.gatesDegraded;
        }
        g.penaltyWindows += config_.fidelity.abandonPenaltyWindows;
        --g.undeliveredFor[static_cast<std::size_t>(pd.relWindow)];
    }

    ActiveGate &gateById(std::size_t id)
    {
        const auto it = lowerBoundById(id);
        qla_assert(it != active_.end() && it->id == id,
                   "active gate ", id, " not found");
        return *it;
    }

    void advanceGate(std::size_t id)
    {
        ActiveGate &g = gateById(id);
        if (g.penaltyWindows > 0) {
            // Abandonment fallback executing (ballistic re-shipment /
            // re-synthesis of the missing interaction): the gate burns
            // the penalty before any further window can commit.
            --g.penaltyWindows;
            ++report_.stallWindows;
            ++report_.fallbackPenaltyWindows;
            ++report_.perGate[id].stallWindows;
            ++report_.perGate[id].penaltyWindows;
            if (!g.stalledEver) {
                g.stalledEver = true;
                ++report_.gatesStalled;
            }
            return;
        }
        if (g.undeliveredFor[static_cast<std::size_t>(g.progress)] > 0) {
            // Gated on delivery: this window did not commit.
            ++report_.stallWindows;
            ++report_.perGate[id].stallWindows;
            if (!g.stalledEver) {
                g.stalledEver = true;
                ++report_.gatesStalled;
            }
            return;
        }
        if (g.conversionWindows > 0) {
            // Cache-miss code conversion (PR 8): the fetched operands
            // arrived (the delivery gate above passed) but are still
            // re-encoding up to the compute level.
            --g.conversionWindows;
            ++report_.stallWindows;
            ++report_.missConversionWindows;
            ++report_.perGate[id].stallWindows;
            if (!g.stalledEver) {
                g.stalledEver = true;
                ++report_.gatesStalled;
            }
            return;
        }
        if (config_.driftOptimization) {
            for (const MemberInteraction &inter :
             g.interactionsFor[static_cast<std::size_t>(g.progress)]) {
                const EntityId mover = entityOf(g, inter.mover);
                const EntityId target = entityOf(g, inter.target);
                bool moved = false;
                if (hierarchy_on_) {
                    // Drift must not cross the region boundary: a
                    // fetched (compute) qubit stays cached, an
                    // in-place-miss (memory) qubit stays in memory.
                    const bool in_compute =
                        inCompute(placement_.tileOf(mover));
                    moved = placement_.driftToward(
                        mover, target,
                        [this, in_compute](const TileCoord &t) {
                            return inCompute(t) == in_compute;
                        });
                } else {
                    moved = placement_.driftToward(mover, target);
                }
                if (moved)
                    ++report_.driftMoves;
            }
        }
        ++g.progress;
        notifyIfNearDone(g);
        if (g.progress
            < program_.gates()[g.id].durationWindows)
            return;
        // Complete: free the gadget tiles, unlock successors.
        for (const EntityId e : g.ancillas)
            releaseAncilla(e);
        for (const std::size_t s : program_.gates()[g.id].successors)
            if (--deps_remaining_[s] == 0)
                ready_.push_back(s);
        std::sort(ready_.begin(), ready_.end());
        active_.erase(lowerBoundById(id));
        ++report_.gates;
    }

    void closeWindow()
    {
        if (probe_) {
            WindowProbe probe;
            probe.window = mesh_.windowsElapsed();
            probe.pairsRequested = report_.pairsRequested;
            probe.pairsDelivered = report_.pairsDelivered();
            probe.pairsDropped = report_.pairsDropped;
            probe.pairsAbandoned = report_.pairsAbandoned;
            probe.retryAttempts = report_.retryAttempts;
            probe.stallWindows = report_.stallWindows;
            probe.operandTouches = report_.operandTouches;
            probe.memHits = report_.memHits;
            probe.memMisses = report_.memMisses;
            probe.memEvictions = report_.memEvictions;
            for (const PendingDemand &pd : pending_)
                probe.pairsPending += pd.demand.pairs;
            probe.placement = &placement_;
            probe.mesh = &mesh_;
            probe_(probe);
        }
        mesh_.advanceWindow();
        if (warmup_remaining_ > 0) {
            --warmup_remaining_;
            ++report_.warmupWindows;
        } else if (report_.gates == program_.gates().size()) {
            report_.completed = true;
            return; // chain ends; queue drains
        }
        if (mesh_.windowsElapsed() >= config_.maxWindows)
            return; // runaway guard: completed stays false
        for (PendingDemand &pd : pending_) {
            ++pd.age;
            report_.deferredPairWindows += pd.demand.pairs;
        }
        events_.scheduleAfter(config_.window,
                              [this] { onWindowBoundary(); });
    }

    const ProgramWorkload &program_;
    const CoSimConfig &config_;
    const WindowProbeFn &probe_;
    IslandMesh mesh_;
    EprRouter router_;
    TilePlacement placement_;
    sim::EventQueue events_;
    CoSimReport report_;
    RouteStats route_stats_;

    std::vector<int> deps_remaining_;
    /** Dependencies not yet inside their final prefetch windows. */
    std::vector<int> far_deps_;
    /** Gates eligible for pre-activation (every dependency near done). */
    std::vector<std::size_t> imminent_;
    std::vector<std::size_t> ready_;   // sorted gate ids
    std::vector<ActiveGate> active_;   // sorted by id
    std::vector<PendingDemand> pending_;
    std::vector<std::size_t> free_ancilla_slots_; // min-heap
    std::size_t next_ancilla_slot_ = 0;
    int warmup_remaining_ = 0;
    double route_length_sum_ = 0.0;
    std::uint64_t routed_count_ = 0;

    // PR 7 noisy-delivery state (inert on the clean path).
    bool noisy_ = false;       ///< Any fault/fidelity machinery active.
    bool fidelity_on_ = false; ///< Delivered pairs carry a fidelity.
    double loss_rate_ = 0.0;
    LinkPurificationPlan link_plan_;
    PathFidelityTable path_fidelity_;
    Rng loss_rng_{0};

    // PR 8 memory-hierarchy state (inert on the uniform mesh).
    bool hierarchy_on_ = false;
    arch::RegionMap regions_;
    arch::RegionCodeParams mem_params_;
    std::uint64_t fetch_pairs_ = 0;
    /** Per data qubit: gate ids touching it, increasing (Belady). */
    std::vector<std::vector<std::size_t>> uses_of_;
};

} // namespace

ProgramCoSimulator::ProgramCoSimulator(const ProgramWorkload &program,
                                       CoSimConfig config)
    : program_(program), config_(config)
{
    qla_assert(config_.prefetchWindows >= 0,
               "prefetchWindows must be >= 0 (0 disables prefetch)");
    extent_ = (config_.meshWidth > 0 && config_.meshHeight > 0)
        ? MeshExtent{config_.meshWidth, config_.meshHeight}
        : meshForProgram(program_);
    qla_assert(extent_.width > 1 && extent_.height > 1,
               "mesh too small for co-simulation");
}

CoSimReport
ProgramCoSimulator::run(const WindowProbeFn &probe)
{
    CoSimEngine engine(program_, config_, extent_, probe);
    return engine.run();
}

std::vector<CoSimSweepPoint>
runCoSimSweep(const std::vector<ProgramWorkload> &workloads,
              const CoSimSweepConfig &config)
{
    std::vector<CoSimSweepPoint> points;
    for (std::size_t w = 0; w < workloads.size(); ++w)
      for (const int bandwidth : config.bandwidths)
        for (const double fault_rate : config.faultRates)
          for (const int level : config.purificationLevels)
            for (const double fidelity : config.linkFidelities)
              for (const double fraction : config.computeFractions)
                for (const int mem_level : config.memoryCodeLevels)
                  for (const std::uint64_t seed : config.seeds) {
                      CoSimSweepPoint point;
                      point.workload = w;
                      point.bandwidth = bandwidth;
                      point.faultRate = fault_rate;
                      point.purificationLevel = level;
                      point.linkFidelity = fidelity;
                      point.computeFraction = fraction;
                      point.memoryLevel = mem_level;
                      point.seed = seed;
                      points.push_back(point);
                  }
    if (points.empty())
        return points;
    sim::ShotScheduler scheduler(config.threads);
    scheduler.run(points.size(), [&](std::size_t job, int) {
        CoSimSweepPoint &point = points[job];
        CoSimConfig cosim = config.base;
        cosim.bandwidth = point.bandwidth;
        cosim.seed = point.seed;
        cosim.linkFaults = config.base.linkFaults.atRate(point.faultRate);
        cosim.fidelity.elementaryFidelity = point.linkFidelity;
        cosim.fidelity.purificationLevel = point.purificationLevel;
        cosim.memory.computeFraction = point.computeFraction;
        cosim.memory.memoryCodeLevel = point.memoryLevel;
        ProgramCoSimulator simulator(workloads[point.workload], cosim);
        point.report = simulator.run();
    });
    return points;
}

CoSimSweepStats
reduceCoSimSweep(const std::vector<CoSimSweepPoint> &points)
{
    CoSimSweepStats stats;
    for (const CoSimSweepPoint &point : points) {
        stats.makespanWindows.add(
            static_cast<double>(point.report.windows));
        stats.utilization.add(point.report.utilization);
        stats.stallWindows.add(
            static_cast<double>(point.report.stallWindows));
        stats.stalledRuns.add(!point.report.fullyOverlapped());
        stats.droppedPairs.add(
            static_cast<double>(point.report.pairsDropped));
        stats.abandonedPairs.add(
            static_cast<double>(point.report.pairsAbandoned));
        stats.retryAttempts.add(
            static_cast<double>(point.report.retryAttempts));
        stats.residualEprError.add(point.report.residualEprError());
        stats.degradedRuns.add(point.report.demandsAbandoned > 0);
        stats.cacheMisses.add(
            static_cast<double>(point.report.memMisses));
        stats.cacheMissRate.add(point.report.missRate());
        stats.cacheEvictions.add(
            static_cast<double>(point.report.memEvictions));
    }
    return stats;
}

} // namespace qla::network
