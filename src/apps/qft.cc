#include "apps/qft.h"

#include <bit>

#include "common/logging.h"

namespace qla::apps {

std::size_t
qftBandWidth(std::size_t n, std::size_t offset)
{
    qla_assert(n >= 1);
    const std::size_t log2n = n <= 1
        ? 0
        : static_cast<std::size_t>(
              64 - std::countl_zero(static_cast<std::uint64_t>(n - 1)));
    return log2n + offset;
}

circuit::QuantumCircuit
bandedQftCircuit(std::size_t n, std::size_t band)
{
    qla_assert(n >= 1, "empty QFT");
    qla_assert(band >= 1, "bandless QFT has no interactions");
    circuit::QuantumCircuit c(n, "banded-qft");
    for (std::size_t i = 0; i < n; ++i) {
        c.h(i);
        for (std::size_t j = i + 1; j < n && j - i <= band; ++j)
            c.cz(j, i);
    }
    return c;
}

} // namespace qla::apps
