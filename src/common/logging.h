/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * - panic():  an internal invariant was violated (a bug in this library);
 *             aborts so a debugger or core dump can capture state.
 * - fatal():  the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments); exits with code 1.
 * - warn():   something is suspicious but the run can continue.
 * - inform(): plain status output.
 */

#ifndef QLA_COMMON_LOGGING_H
#define QLA_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace qla {

/** Terminate with a bug report; never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);

/** Terminate with a user-error report; never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);

/** Print a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &message);

/** Print a status message to stderr. */
void informImpl(const std::string &message);

namespace detail {

/** Fold a variadic argument pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail
} // namespace qla

#define qla_panic(...) \
    ::qla::panicImpl(__FILE__, __LINE__, ::qla::detail::concat(__VA_ARGS__))

#define qla_fatal(...) \
    ::qla::fatalImpl(__FILE__, __LINE__, ::qla::detail::concat(__VA_ARGS__))

#define qla_warn(...) \
    ::qla::warnImpl(__FILE__, __LINE__, ::qla::detail::concat(__VA_ARGS__))

#define qla_inform(...) \
    ::qla::informImpl(::qla::detail::concat(__VA_ARGS__))

/** Internal-invariant check that survives NDEBUG builds. */
#define qla_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::qla::panicImpl(__FILE__, __LINE__,                            \
                ::qla::detail::concat("assertion failed: " #cond " ",      \
                                      ##__VA_ARGS__));                      \
        }                                                                   \
    } while (0)

#endif // QLA_COMMON_LOGGING_H
