/**
 * @file
 * Tile geometry and chip-level area model tests (Sections 4.2 and 5).
 */

#include <gtest/gtest.h>

#include "arch/chip.h"
#include "arch/logical_tile.h"

using namespace qla;
using namespace qla::arch;

TEST(TileGeometry, PaperDimensions)
{
    const TileGeometry g;
    EXPECT_EQ(g.qubitWidth, 36);
    EXPECT_EQ(g.qubitHeight, 147);
    EXPECT_EQ(g.pitchX(), 47);
    EXPECT_EQ(g.pitchY(), 159);
}

TEST(TileGeometry, QubitAreaIsTwoPointOneSquareMillimeters)
{
    // Section 4.2: "our qubit will have dimensions of (36 x 147) cells
    // = 2.11 mm^2 at 20 um large on each cell side".
    const TileGeometry g;
    EXPECT_NEAR(g.qubitAreaSquareMillimeters(20.0), 2.11, 0.01);
}

TEST(TileGeometry, TileAreaIncludesChannels)
{
    const TileGeometry g;
    const double tile = g.tileAreaSquareMeters(20.0);
    // 47 x 159 cells x (20 um)^2 = 2.989e-6 m^2.
    EXPECT_NEAR(tile, 2.989e-6, 0.01e-6);
}

TEST(ChipModel, HundredQubitsPerPentiumDie)
{
    // Section 4.2: ~100 logical qubits per 90 nm Pentium-IV die.
    const QlaChipModel chip;
    EXPECT_NEAR(chip.qubitsPerPentium4Die(), 100.0, 10.0);
}

TEST(ChipModel, Table2AreaColumn)
{
    const QlaChipModel chip;
    // N=128 row: 37,971 qubits -> 0.11 m^2.
    EXPECT_NEAR(chip.estimate(37971).areaSquareMeters, 0.11, 0.01);
    // N=2048 row: 602,259 qubits -> 1.80 m^2.
    EXPECT_NEAR(chip.estimate(602259).areaSquareMeters, 1.80, 0.02);
}

TEST(ChipModel, EdgeLengthForShor128)
{
    // Section 6: a 0.11 m^2 chip is ~33 cm on edge... (the paper quotes
    // 33 cm for the 0.11 m^2 N=128 chip).
    const QlaChipModel chip;
    EXPECT_NEAR(chip.estimate(37971).edgeCentimeters, 33.0, 1.0);
}

TEST(ChipModel, IonCountScalesWithTiles)
{
    const QlaChipModel chip;
    const auto estimate = chip.estimate(1000);
    EXPECT_EQ(estimate.totalIons, 441000u);
    EXPECT_EQ(estimate.tilesPerSide, 32u); // ceil(sqrt(1000))
}

TEST(LogicalTile, BuildsFigureFiveStructure)
{
    const auto grid = buildLogicalQubitTile();
    EXPECT_EQ(grid.width(), 36);
    EXPECT_EQ(grid.height(), 147);
    // 3 conglomerations x 7 groups x 3 rows x 7 ions = 441 data-role
    // ions plus 63 cooling ions.
    EXPECT_EQ(grid.countIons(qccd::IonKind::Data), 441u);
    EXPECT_EQ(grid.countIons(qccd::IonKind::Cooling), 63u);
}

TEST(LogicalTile, IonsSitOnTraversableCells)
{
    const auto grid = buildLogicalQubitTile();
    for (std::size_t i = 0; i < grid.ionCount(); ++i)
        EXPECT_TRUE(grid.isTraversable(grid.ion(i).position));
}

TEST(LogicalTile, HasBorderChannels)
{
    const auto grid = buildLogicalQubitTile();
    for (Cells x = 0; x < grid.width(); ++x) {
        EXPECT_TRUE(grid.isTraversable({x, 0}));
        EXPECT_TRUE(grid.isTraversable({x, grid.height() - 1}));
    }
}
