/**
 * @file
 * Fault-tolerant Toffoli gadget cost model (paper Section 5).
 *
 * "A fault-tolerant construction of this gate using a universal one and
 * two-qubit gate basis requires 6 additional logical ancilla qubits.
 * ... The preparation of the ancilla qubits is an involved process of 15
 * timesteps repeated three times. ... each Toffoli will contribute
 * approximately 15 error correction steps for the ancilla preparation
 * and 6 error correction cycles to finish the gate." A time-step is one
 * error-correction cycle of the involved logical qubits.
 */

#ifndef QLA_APPS_TOFFOLI_H
#define QLA_APPS_TOFFOLI_H

#include <cstdint>

#include "circuit/circuit.h"
#include "common/units.h"

namespace qla::apps {

/** Cost summary of one fault-tolerant logical Toffoli gate. */
struct ToffoliGadget
{
    /** Logical operands. */
    std::uint64_t operandQubits = 3;
    /** Extra logical ancilla qubits. */
    std::uint64_t ancillaQubits = 6;
    /** EC steps spent preparing the ancilla (overlappable). */
    std::uint64_t prepEccSteps = 15;
    /** Ancilla preparation repetitions (verification retries). */
    std::uint64_t prepRepetitions = 3;
    /** EC steps to finish the gate after the ancilla is ready. */
    std::uint64_t finishEccSteps = 6;

    /**
     * EC steps charged per Toffoli on the critical path: the ancilla
     * preparations of successive Toffolis overlap with the previous
     * gate's execution, but operand sharing limits the overlap, so each
     * Toffoli contributes prep + finish = 21 steps (Section 5).
     */
    std::uint64_t eccStepsPerGate() const
    {
        return prepEccSteps + finishEccSteps;
    }

    /** Wall-clock cost per Toffoli given the EC cycle time. */
    Seconds latency(Seconds ecc_cycle) const
    {
        return static_cast<double>(eccStepsPerGate()) * ecc_cycle;
    }

    /** Total logical qubits touched (operands + ancilla). */
    std::uint64_t totalQubits() const
    {
        return operandQubits + ancillaQubits;
    }
};

/**
 * Deterministic brickwork Toffoli network: @p layers layers over
 * @p qubits wires, layer l placing Toffoli(q, q+1, q+2) on every third
 * wire starting at l mod 3. Consecutive layers shift by one wire, so
 * every logical qubit interacts with both neighbors over three layers --
 * the dense local-interaction stress workload the paper's scheduler
 * study runs ("our implementation of the Toffoli gate"), here as a real
 * circuit the co-simulation lowers onto the mesh.
 */
circuit::QuantumCircuit toffoliNetworkCircuit(std::size_t qubits,
                                              std::size_t layers);

} // namespace qla::apps

#endif // QLA_APPS_TOFFOLI_H
