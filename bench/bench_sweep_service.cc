/**
 * @file
 * Sweep-service record/replay fixture: what the warm caches buy.
 *
 * Benchmarks
 *   - BM_SweepServiceColdRecord: one threshold job on a fresh
 *     SweepCaches instance -- every noise point records its frame
 *     traces before the shots replay (the first-query cost).
 *   - BM_SweepServiceWarmCache: the same job on caches kept warm by a
 *     prior run -- recorded traces replay, nothing re-records (the
 *     repeated-query cost). The serve-layer cache contract is that
 *     warm output is byte-identical to cold (asserted here and in
 *     tests/test_sweep_service.cc); the ratio of these two benchmarks
 *     is the record/replay speedup the CI bench gate tracks.
 *   - BM_SweepServiceResultCacheReplay: the same job resubmitted to a
 *     SweepService that already served it -- pure result-cache lookup,
 *     no simulation at all.
 *
 * `--json <path>` records the google-benchmark JSON report
 * (BENCH_sweep_service.json snapshots; compared by the CI bench-smoke
 * job via scripts/compare_bench.py).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "serve/service.h"
#include "serve/sweep_runner.h"

using namespace qla::serve;

namespace {

/** Few shots over several points: construction (trace recording)
 *  dominates cold runs, which is exactly the gap the caches close. */
SweepJobSpec
fixtureSpec()
{
    SweepJobSpec spec;
    spec.kind = SweepKind::Threshold;
    spec.threshold.physicalErrors = {1.0e-3, 1.5e-3, 2.0e-3, 2.5e-3,
                                     3.0e-3};
    spec.threshold.shots = 64;
    spec.threshold.chunkShots = 64;
    spec.threshold.groupWords = 1;
    return spec;
}

void
BM_SweepServiceColdRecord(benchmark::State &state)
{
    const SweepJobSpec spec = fixtureSpec();
    RunnerOptions options;
    options.workers = 1;
    for (auto _ : state) {
        SweepCaches caches; // Fresh: every point re-records.
        const RunOutcome outcome = runSweepJob(spec, options, caches);
        if (!outcome.complete)
            state.SkipWithError("cold run incomplete");
        benchmark::DoNotOptimize(outcome.output.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * spec.threshold.physicalErrors.size() * 2
                            * spec.threshold.shots);
}
BENCHMARK(BM_SweepServiceColdRecord)->UseRealTime();

void
BM_SweepServiceWarmCache(benchmark::State &state)
{
    const SweepJobSpec spec = fixtureSpec();
    RunnerOptions options;
    options.workers = 1;
    SweepCaches caches;
    const RunOutcome cold = runSweepJob(spec, options, caches);
    for (auto _ : state) {
        const RunOutcome warm = runSweepJob(spec, options, caches);
        if (warm.output != cold.output)
            state.SkipWithError("warm replay diverged from cold run");
        benchmark::DoNotOptimize(warm.output.data());
    }
    state.SetItemsProcessed(state.iterations()
                            * spec.threshold.physicalErrors.size() * 2
                            * spec.threshold.shots);
}
BENCHMARK(BM_SweepServiceWarmCache)->UseRealTime();

void
BM_SweepServiceResultCacheReplay(benchmark::State &state)
{
    SweepService service;
    SweepRequest request;
    request.name = "fixture";
    request.spec = fixtureSpec();
    request.options.workers = 1;
    service.submit(request);
    SweepResponse first;
    service.processNext(first);
    if (!first.complete) {
        state.SkipWithError("fixture job failed");
        return;
    }
    for (auto _ : state) {
        service.submit(request);
        SweepResponse response;
        service.processNext(response);
        if (!response.fromResultCache
            || response.output != first.output)
            state.SkipWithError("result cache missed");
        benchmark::DoNotOptimize(response.output.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SweepServiceResultCacheReplay)->UseRealTime();

} // namespace

#include "gbench_json_main.h"

int
main(int argc, char **argv)
{
    return runGoogleBenchmarkMain(argc, argv);
}
