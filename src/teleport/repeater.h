/**
 * @file
 * Repeater-chain connection model (paper Section 4.2, Figures 8 and 9).
 *
 * A connection between two logical qubits separated by D cells uses
 * teleportation islands every d cells. The protocol:
 *
 *  (a) elementary EPR pairs are created mid-segment and distributed to
 *      the two adjacent islands (pipelined two-way ballistic channel);
 *  (b) each segment pair is purified by nested entanglement pumping
 *      between its two islands only ("limiting purification to be only
 *      between two adjacent islands");
 *  (c) successive entanglement-swapping rounds halve the number of pairs
 *      until one EPR pair spans source to destination (logarithmic hops),
 *      with *no* final purification -- the segments are purified well
 *      enough in advance;
 *  (d) the data qubit is teleported across the spanning pair.
 *
 * Timing charges one two-qubit gate + one measurement per purification
 * step, serialized per island gate region, with elementary-pair
 * generation pipelined underneath.
 */

#ifndef QLA_TELEPORT_REPEATER_H
#define QLA_TELEPORT_REPEATER_H

#include "common/tech_params.h"
#include "teleport/purification.h"

namespace qla::teleport {

/** Physical and protocol parameters for the interconnect model. */
struct RepeaterConfig
{
    /**
     * Per-cell depolarization of an EPR half in transit. The interconnect
     * is provisioned for early-technology movement quality (between
     * Table 1's Pcurrent and Pexpected); together with creationError,
     * opError and targetInfidelity this is a calibrated reconstruction
     * parameter -- the frozen defaults reproduce Figure 9's curve
     * ordering, its ~0.1 s time scale, and the d=100/d=350 crossover
     * near 6000 cells. See EXPERIMENTS.md experiment E3.
     */
    double perCellError = 3e-4;
    /** Infidelity of a freshly created EPR pair. */
    double creationError = 2e-3;
    /** Local-operation error per purification / swap step. */
    double opError = 1.5e-4;
    /** Required end-to-end infidelity of the spanning EPR pair. */
    double targetInfidelity = 0.12;
    /** Purification step: one two-qubit gate + one readout. */
    Seconds purifyStepTime = units::microseconds(110.0);
    /** Swap step: Bell measurement + classical relay + Pauli fix-up. */
    Seconds swapStepTime = units::microseconds(111.0);
    /** Serial generation interval of elementary pairs per channel. */
    Seconds pairGenerationInterval = units::microseconds(12.0);
    /** Gate regions per island (purification serialization factor). */
    int gateRegionsPerIsland = 1;
    /** Per-cell ballistic traversal time. */
    Seconds cellTraversalTime = units::microseconds(0.01);
    /** Pumping planner tuning (opError is copied in automatically). */
    PumpingConfig pumping;

    /** Defaults consistent with a TechnologyParameters instance. */
    static RepeaterConfig fromTechnology(const TechnologyParameters &tech);
};

/** Outcome of planning one end-to-end connection. */
struct ConnectionPlan
{
    bool feasible = false;
    /** Total connection latency. */
    Seconds connectionTime = 0.0;
    /** Fidelity of the spanning pair just before the final teleport. */
    double finalFidelity = 0.0;
    /** Per-segment fidelity demanded by the swap-composition budget. */
    double requiredSegmentFidelity = 0.0;
    /** Segments in the chain. */
    int segments = 0;
    /** Entanglement-swapping rounds (log2 of segments, rounded up). */
    int swapLevels = 0;
    /** Expected purification ops serialized at the busiest island. */
    double opsAtBusiestIsland = 0.0;
    /** Expected elementary pairs consumed per segment. */
    double elementaryPairsPerSegment = 0.0;
    /** The per-segment pumping plan. */
    SegmentPlan segmentPlan;
};

/**
 * Plans connections over a chain of teleportation islands.
 */
class RepeaterChain
{
  public:
    explicit RepeaterChain(RepeaterConfig config);

    const RepeaterConfig &config() const { return config_; }

    /**
     * Plan a connection across @p total_cells cells with islands every
     * @p island_spacing cells.
     */
    ConnectionPlan plan(Cells total_cells, Cells island_spacing) const;

    /**
     * Fidelity of the spanning pair after swapping @p segments segment
     * pairs of fidelity @p segment_f (balanced binary tree composition
     * with per-swap operation error).
     */
    double composedFidelity(double segment_f, int segments) const;

    /** Elementary (post-transport) pair fidelity for a segment length. */
    double elementaryFidelity(Cells island_spacing) const;

  private:
    /** Minimum segment fidelity meeting the end-to-end target. */
    double requiredSegmentFidelity(int segments, double ceiling) const;

    RepeaterConfig config_;
};

} // namespace qla::teleport

#endif // QLA_TELEPORT_REPEATER_H
