/**
 * @file
 * Logical-program co-simulation: computation and communication executed
 * together on the discrete-event kernel.
 *
 * This is the executable counterpart of the paper's Section-5 study:
 * a real circuit (QCLA adder, Toffoli network, banded QFT) is lowered
 * onto the island mesh (network/program_workload.h, network/placement.h)
 * and driven window by window on sim::EventQueue. Every scheduling
 * window is an event chain at one instant of simulated time --
 * demand emission + greedy routing, then one gate-advance event per
 * active gate (FIFO tie-break keeps them in gate order), then a
 * window-close event -- and a gate's window of progress commits only
 * when all its EPR demands were delivered: computation is *gated on
 * delivery*, and every window a gate waits is a stall charged to that
 * gate. With enough bandwidth the measured makespan equals the
 * dependency-DAG critical path (communication fully overlapped with
 * error correction, the paper's bandwidth-2 conclusion); with too
 * little, stalls stretch it.
 */

#ifndef QLA_NETWORK_COSIM_H
#define QLA_NETWORK_COSIM_H

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/region.h"
#include "network/fidelity.h"
#include "network/placement.h"
#include "network/program_workload.h"
#include "network/scheduler.h"
#include "sim/event_queue.h"
#include "sim/stats.h"

namespace qla::network {

/** Co-simulation parameters. */
struct CoSimConfig
{
    /**
     * Mesh extent in islands; 0 means size automatically from the
     * program (meshForProgram).
     */
    int meshWidth = 0;
    int meshHeight = 0;
    /** Channels per direction per link. */
    int bandwidth = 2;
    /** Scheduling window: one level-2 EC period. */
    Seconds window = 0.043;
    /** Service time per purified EPR pair (see SchedulerConfig). */
    Seconds purifiedPairServiceTime = units::microseconds(1400.0);
    /** Qubit-drift optimization on/off. */
    bool driftOptimization = true;
    /** Detour attempts around congested columns. */
    int detourRadius = 2;
    /**
     * How many windows ahead an active gate's EPR demands are issued.
     * Pairs for a gate's window k can be delivered any time from k -
     * prefetchWindows up to the end of window k -- the paper's
     * pipelining of communication under the preceding error-correction
     * cycles ("communication always overlapped with error correction").
     * 0 disables prefetch: every window's pairs must route within that
     * window alone.
     *
     * Modeling decision: a prefetched demand pins its endpoint islands
     * at emission time. Drift moves between emission and consumption do
     * not re-target it -- the pairs are already in flight to where the
     * qubits were, and in-flight halves are not recalled -- so a pair
     * that drifts co-located after emission still counts as mesh
     * traffic. This slightly overstates traffic/stalls near drift
     * moves, i.e. it is conservative for the paper's
     * bandwidth-sufficiency and drift-saves-traffic conclusions.
     */
    int prefetchWindows = 2;
    /** Initial placement policy. */
    PlacementStrategy placement = PlacementStrategy::Affinity;
    /** Seed for the Random placement shuffle. */
    std::uint64_t seed = 1;
    /** Runaway guard: abort (completed = false) past this many windows. */
    std::uint64_t maxWindows = 1u << 22;

    /**
     * Stochastic link faults (PR 7). The fault-process seed is mixed
     * with the run seed so sweep seeds perturb fault realizations too.
     * All-zero rates (the default) keep the engine bit-identical to the
     * fault-free PR-5 path.
     */
    LinkFaultConfig linkFaults;
    /**
     * Fidelity-aware delivery (PR 7): per-link Werner pairs, pumping to
     * the purification-level target paid for in channel slots, swap
     * composition along routes, delivered-fidelity threshold gating
     * with bounded retry/backoff and abandonment. The defaults
     * (fidelity 1.0, level 0, no threshold) are byte-identical to the
     * ideal engine.
     */
    FidelityConfig fidelity;
    /**
     * CQLA memory hierarchy (PR 8): split the mesh into compute and
     * memory island columns (arch::RegionMap), place cold qubits in
     * memory, and charge cache misses as fidelity-priced teleport
     * round-trips on the missing gate's dependency chain. The default
     * (computeFraction 1.0) keeps the mesh uniform and the engine
     * byte-identical to the single-region schedule.
     */
    arch::MemoryHierarchyConfig memory;
};

/** Results of one co-simulated program execution. */
struct CoSimReport
{
    /** False when the run hit maxWindows before finishing. */
    bool completed = false;
    /** EC windows consumed by computation. */
    std::uint64_t windows = 0;
    /**
     * Routing-only windows before computation begins: the first gates'
     * pairs prefetch while the logical qubits are still being encoded
     * and verified (initialization takes far longer than this), exact
     * like every later gate prefetches under its predecessors. Equals
     * prefetchWindows; not charged to the makespan.
     */
    std::uint64_t warmupWindows = 0;
    /** windows x window length. */
    Seconds makespan = 0.0;
    /** Ideal windows (dependency critical path) for this program. */
    std::uint64_t criticalPathWindows = 0;
    /** Gates executed. */
    std::uint64_t gates = 0;
    /** Transversal interactions issued. */
    std::uint64_t interactions = 0;

    /** EPR-pair conservation ledger: requested = delivered (mesh-routed
     *  + island-local) + dropped + abandoned, plus whatever is still
     *  pending inside an open window (zero once completed). A pair lost
     *  in transit or rejected below the fidelity threshold counts as
     *  dropped AND as a fresh request (the replacement shipment), so
     *  every term is monotone and the identity holds at every window
     *  boundary -- asserted by the test_network conservation property
     *  test. */
    std::uint64_t pairsRequested = 0;
    std::uint64_t pairsRoutedOnMesh = 0;
    std::uint64_t pairsLocal = 0;
    /** Pairs destroyed before use: lost in transit on faulty links or
     *  rejected below the delivery-fidelity threshold (PR 7; the two
     *  sub-counters below partition it). Zero on the clean path. */
    std::uint64_t pairsDropped = 0;
    /** Dropped sub-counter: transit losses on faulty links. */
    std::uint64_t pairsLostInTransit = 0;
    /** Dropped sub-counter: delivered below the fidelity threshold. */
    std::uint64_t pairsRejectedFidelity = 0;
    /** Pairs of demands abandoned after the retry budget ran out (the
     *  fallback path: the gate pays abandonPenaltyWindows instead). */
    std::uint64_t pairsAbandoned = 0;
    /** Demands abandoned (each charges one fallback penalty). */
    std::uint64_t demandsAbandoned = 0;
    /** Gates that had at least one demand abandoned. */
    std::uint64_t gatesDegraded = 0;
    /** Below-threshold rejection events (each one burns one unit of the
     *  demand's retry budget and triggers backoff). */
    std::uint64_t retryAttempts = 0;
    /** Demand-windows spent waiting out a retry backoff. */
    std::uint64_t retryBackoffWindows = 0;
    /** Stall windows charged as abandonment fallback penalty (subset of
     *  stallWindows). */
    std::uint64_t fallbackPenaltyWindows = 0;
    std::uint64_t pairsDelivered() const
    {
        return pairsRoutedOnMesh + pairsLocal;
    }
    /** Pair-windows deferred: undelivered pairs carried across a window
     *  boundary, summed over boundaries. */
    std::uint64_t deferredPairWindows = 0;

    /** Delivered-fidelity aggregates over accepted mesh-routed pairs
     *  (only tracked when the fidelity model is enabled; the clean
     *  engine leaves them at their ideal defaults). */
    std::uint64_t fidelityPairs = 0;
    double deliveredFidelitySum = 0.0;
    double deliveredFidelityMin = 1.0;
    double deliveredFidelityMean() const
    {
        return fidelityPairs
            ? deliveredFidelitySum / static_cast<double>(fidelityPairs)
            : 1.0;
    }
    /** Residual interconnect error fed to the ARQ noise model as
     *  NoiseParameters::eprResidualError: the mean infidelity of the
     *  pairs actually consumed by transversal interactions. */
    double residualEprError() const
    {
        return 1.0 - deliveredFidelityMean();
    }

    /** CQLA cache ledger (PR 8; all zero on the uniform mesh). Every
     *  data-qubit operand of every gate is classified exactly once when
     *  the gate first emits demands: operandTouches = memHits +
     *  memMisses at every window boundary (the cache conservation
     *  identity, asserted by the test_network property test). A miss
     *  either teleports the operand into the compute region (fetch,
     *  possibly after evicting the coldest resident) or -- when no
     *  compute tile can be freed -- executes in place in memory. */
    std::uint64_t operandTouches = 0;
    /** Operand already resident in the compute region (local window). */
    std::uint64_t memHits = 0;
    /** Operand found in the memory region (includes in-place misses). */
    std::uint64_t memMisses = 0;
    /** Misses served without relocation (compute region full even
     *  after eviction); subset of memMisses. */
    std::uint64_t memInPlaceMisses = 0;
    /** Compute-resident qubits written back to memory to make room. */
    std::uint64_t memEvictions = 0;
    /** EPR pairs requested by miss fetches (subset of pairsRequested). */
    std::uint64_t fetchPairsRequested = 0;
    /** EPR pairs requested by eviction write-backs (subset of
     *  pairsRequested). */
    std::uint64_t writebackPairsRequested = 0;
    /** Stall windows spent re-encoding fetched qubits up to the compute
     *  code level (subset of stallWindows; zero when the memory region
     *  runs the compute-level code). */
    std::uint64_t missConversionWindows = 0;
    /** Region split actually used (computeTiles = all tiles and
     *  memoryTiles = 0 on the uniform mesh). */
    std::uint64_t computeTiles = 0;
    std::uint64_t memoryTiles = 0;
    /** Cache miss rate over all operand touches (0 when untouched). */
    double missRate() const
    {
        return operandTouches
            ? static_cast<double>(memMisses)
                / static_cast<double>(operandTouches)
            : 0.0;
    }

    /** Per-gate retry/stall attribution (indexed by gate id). */
    struct GateAttribution
    {
        std::uint32_t stallWindows = 0;   ///< EC windows this gate stalled.
        std::uint32_t retryAttempts = 0;  ///< Below-threshold re-requests.
        std::uint32_t penaltyWindows = 0; ///< Abandonment fallback windows.
        std::uint64_t pairsAbandoned = 0; ///< Pairs given up on for it.
    };
    std::vector<GateAttribution> perGate;

    /** Gate-windows spent waiting on delivery (the stall charge). */
    std::uint64_t stallWindows = 0;
    /** Gates that stalled at least once. */
    std::uint64_t gatesStalled = 0;
    /** Gate-windows a ready gate waited because its gadget-ancilla
     *  tiles could not be allocated (mesh too full). */
    std::uint64_t allocationStallWindows = 0;
    /** Drift relocations performed. */
    std::uint64_t driftMoves = 0;
    std::uint64_t backoffReroutes = 0;
    double utilization = 0.0;
    double averageRouteLength = 0.0;

    /** Communication (and tile allocation) never held computation back:
     *  when true and completed, the makespan is the dependency-DAG
     *  critical path. */
    bool fullyOverlapped() const
    {
        return stallWindows == 0 && allocationStallWindows == 0;
    }
};

/** Per-window observer snapshot (property tests hook in here). All
 *  counters are cumulative EPR pairs up to this boundary; the
 *  conservation identity requested = delivered + pending + dropped +
 *  abandoned must hold at every one. */
struct WindowProbe
{
    std::uint64_t window = 0; ///< 0-based boundary index.
    std::uint64_t pairsRequested = 0;
    std::uint64_t pairsDelivered = 0;
    std::uint64_t pairsPending = 0;
    std::uint64_t pairsDropped = 0;
    std::uint64_t pairsAbandoned = 0;
    std::uint64_t retryAttempts = 0;
    /** Cumulative gate-windows stalled so far. */
    std::uint64_t stallWindows = 0;
    /** Cumulative cache-ledger counters (operandTouches = memHits +
     *  memMisses must hold at every boundary). */
    std::uint64_t operandTouches = 0;
    std::uint64_t memHits = 0;
    std::uint64_t memMisses = 0;
    std::uint64_t memEvictions = 0;
    const TilePlacement *placement = nullptr;
    const IslandMesh *mesh = nullptr;
};

using WindowProbeFn = std::function<void(const WindowProbe &)>;

/**
 * Event-driven executor for one lowered program.
 */
class ProgramCoSimulator
{
  public:
    /** @p program is held by reference and must outlive the simulator
     *  (lowered workloads are typically reused across many runs). */
    ProgramCoSimulator(const ProgramWorkload &program, CoSimConfig config);
    ProgramCoSimulator(ProgramWorkload &&, CoSimConfig) = delete;

    /** Execute the program; @p probe (optional) fires at the end of
     *  every window before reservations clear. */
    CoSimReport run(const WindowProbeFn &probe = {});

    /** Mesh extent actually used (after auto-sizing). */
    MeshExtent meshExtent() const { return extent_; }

  private:
    const ProgramWorkload &program_;
    CoSimConfig config_;
    MeshExtent extent_;
};

//
// Configuration sweeps.
//

/** One point of a co-simulation sweep. */
struct CoSimSweepPoint
{
    std::size_t workload = 0; ///< Index into CoSimSweepConfig::workloads.
    int bandwidth = 0;        ///< Channels per direction per mesh link.
    /** Uniform link-fault rate (LinkFaultConfig::atRate axis). */
    double faultRate = 0.0;
    /** Purification level for the fidelity model. */
    int purificationLevel = 0;
    /** Elementary link fidelity for the fidelity model. */
    double linkFidelity = 1.0;
    /** Compute-region fraction (memory-hierarchy axis; 1.0 = uniform). */
    double computeFraction = 1.0;
    /** Memory-region code level (only meaningful when split). */
    int memoryLevel = 1;
    std::uint64_t seed = 0; ///< Placement/noise seed of this run.
    CoSimReport report;     ///< The executed schedule's ledger.
};

/** Sweep axes: workloads x bandwidths x fault rates x purification
 *  levels x link fidelities x compute fractions x memory code levels x
 *  seeds (PR 7 degradation surface x PR 8 hierarchy surface). The
 *  fault/fidelity/hierarchy axes default to the ideal uniform point,
 *  reproducing the PR-5 sweep exactly. */
struct CoSimSweepConfig
{
    /** Base configuration (mesh auto-sizing per workload when 0). Note
     *  the fault-rate axis overrides base.linkFaults' rates via
     *  LinkFaultConfig::atRate, and the fidelity axes override
     *  base.fidelity.{elementaryFidelity, purificationLevel}. */
    CoSimConfig base;
    std::vector<int> bandwidths = {1, 2, 3, 4};
    std::vector<double> faultRates = {0.0};
    std::vector<int> purificationLevels = {0};
    std::vector<double> linkFidelities = {1.0};
    /** Compute-region fractions (base.memory.computeFraction axis);
     *  the default single 1.0 keeps every point uniform. */
    std::vector<double> computeFractions = {1.0};
    /** Memory-region code levels (base.memory.memoryCodeLevel axis). */
    std::vector<int> memoryCodeLevels = {1};
    /** Seeds; each perturbs the (Random-strategy) placement and the
     *  fault realization. */
    std::vector<std::uint64_t> seeds = {1};
    /** Worker threads (sim::resolveThreadCount semantics). */
    int threads = 0;
};

/** Fixed-order reduction over a sweep's points. */
struct CoSimSweepStats
{
    sim::ScalarStat makespanWindows;
    sim::ScalarStat utilization;
    sim::ScalarStat stallWindows;
    sim::RateStat stalledRuns;
    // PR 7 degradation aggregates (all zero on a clean sweep).
    sim::ScalarStat droppedPairs;
    sim::ScalarStat abandonedPairs;
    sim::ScalarStat retryAttempts;
    sim::ScalarStat residualEprError;
    sim::RateStat degradedRuns; ///< Runs with >= 1 abandoned demand.
    // PR 8 memory-hierarchy aggregates (zero on a uniform sweep).
    sim::ScalarStat cacheMisses;
    sim::ScalarStat cacheMissRate;
    sim::ScalarStat cacheEvictions;
};

/**
 * Run every (workload, bandwidth, fault rate, purification level, link
 * fidelity, compute fraction, memory level, seed) combination on the
 * shot scheduler. Points come back
 * in fixed lexicographic job order (axes nested in that order) and each
 * job's result depends only on its own parameters, so the sweep is
 * bit-identical for every thread count (the repo determinism contract;
 * enforced by tools/determinism_gate --mode interconnect).
 */
std::vector<CoSimSweepPoint> runCoSimSweep(
    const std::vector<ProgramWorkload> &workloads,
    const CoSimSweepConfig &config);

/** Reduce sweep points in index order (deterministic merge). */
CoSimSweepStats reduceCoSimSweep(
    const std::vector<CoSimSweepPoint> &points);

} // namespace qla::network

#endif // QLA_NETWORK_COSIM_H
