/**
 * @file
 * CI determinism gate for the Figure-7 Monte Carlo.
 *
 * Emits machine-comparable, full-precision results so CI can byte-diff
 * runs against each other:
 *
 *   determinism_gate --mode sweep [--threads N] [--shots S]
 *       Crossing-window threshold sweep; identical output is required
 *       for every thread count (the determinism contract).
 *
 *   determinism_gate --mode spot --engine batched
 *       [--group G] [--compaction on|off] [--fill F] [--width W]
 *       [--sampling site|trace] [--fire-plan-cache on|off]
 *       [--threads N] [--shots S]
 *       Single-point L1+L2 failure counts on the batched engine;
 *       identical output is required for every group width, for
 *       compaction on vs off, for every segment-migration fill
 *       threshold F, for every SIMD tile width W (1/2/4/8 words), and
 *       for the fire-plan cache on vs off (cached skeleton + compiled
 *       replay vs the legacy planning sweep + interpreter).
 *       --sampling picks the fault-sampling granularity; it is the one
 *       axis that changes the realized fault pattern (per-site vs
 *       trace-level batched draws), so runs are byte-comparable only
 *       within one sampling mode.
 *
 *   determinism_gate --mode spot --engine scalar [--shots S]
 *       The scalar reference engine's counts (self-reproducibility).
 *
 *   determinism_gate --mode crosscheck [--shots S]
 *       Statistical scalar-vs-batched agreement at a spot point;
 *       exits non-zero when the estimates disagree beyond their
 *       combined 95% intervals (with slack).
 *
 *   determinism_gate --mode interconnect [--threads N]
 *       [--fault-rate F] [--purification L] [--link-fidelity E]
 *       [--retry-budget R] [--compute-fraction C] [--memory-level M]
 *       Logical-program co-simulation sweep (workloads x bandwidths x
 *       placement seeds on the shot scheduler); identical output is
 *       required for every thread count and for fixed-seed reruns.
 *       With any noisy axis set (nonzero fault rate, purification
 *       level > 0, or link fidelity < 1) the sweep additionally spans
 *       fault rate x purification level x link fidelity against the
 *       clean point and prints the full degradation ledger (drops,
 *       rejections, retries, abandonments, delivered fidelity) -- the
 *       PR-7 noisy-delivery pipeline under the same byte-diff contract.
 *       With --compute-fraction below 1 the sweep additionally spans
 *       the uniform mesh against the CQLA compute/memory split at that
 *       fraction (memory region encoded at --memory-level) and prints
 *       the cache ledger (touches, hits, misses, evictions, fetch and
 *       write-back pairs) -- the PR-8 memory hierarchy under the same
 *       byte-diff contract. With all knobs at their defaults the
 *       output is byte-identical to the clean PR-5 sweep.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/qcla.h"
#include "apps/qft.h"
#include "apps/toffoli.h"
#include "arq/batched_monte_carlo.h"
#include "arq/monte_carlo.h"
#include "common/rng.h"
#include "ecc/steane.h"
#include "network/cosim.h"

using namespace qla;
using namespace qla::arq;

namespace {

constexpr double kSpotError = 6e-3;
constexpr std::uint64_t kSpotSeed = 424242;

int
runSweep(int threads, std::size_t shots)
{
    const std::vector<double> window = {1.0e-3, 1.5e-3, 2.0e-3, 2.5e-3,
                                        3.0e-3};
    McRunOptions options;
    options.threads = threads;
    const auto points = thresholdSweep(window, shots, 20050938, options);
    for (const auto &point : points)
        std::printf("p=%.17g L1=%.17g +- %.17g L2=%.17g +- %.17g\n",
                    point.physicalError, point.level1Failure,
                    point.level1Error, point.level2Failure,
                    point.level2Error);
    std::printf("threshold=%.17g\n", estimateThreshold(points));
    return 0;
}

int
runSpotBatched(std::size_t group, bool compaction, double fill,
               std::size_t width, FaultSampling sampling,
               bool fire_plan_cache, int threads, std::size_t shots)
{
    McRunOptions options;
    options.threads = threads;
    options.batch.groupWords = group;
    options.batch.laneCompaction = compaction;
    options.batch.migrationFillThreshold = fill;
    options.batch.simdWidth = width;
    options.batch.faultSampling = sampling;
    options.batch.firePlanCache = fire_plan_cache;
    for (const int level : {1, 2}) {
        ExperimentStats stats;
        const auto rate = runLogicalExperiment(
            ecc::steaneCode(), NoiseParameters::swept(kSpotError), level,
            shots, kSpotSeed, options, &stats);
        std::printf("L%d failures=%llu/%llu syndromes=%llu/%llu "
                    "prep_exits=%llu\n",
                    level, (unsigned long long)rate.successes(),
                    (unsigned long long)rate.trials(),
                    (unsigned long long)stats.nontrivialSyndrome
                        .successes(),
                    (unsigned long long)stats.nontrivialSyndrome.trials(),
                    (unsigned long long)stats.prepAttempts.count());
    }
    return 0;
}

int
runSpotScalar(std::size_t shots)
{
    Rng rng(kSpotSeed);
    LogicalQubitExperiment experiment(
        ecc::steaneCode(), NoiseParameters::swept(kSpotError));
    for (const int level : {1, 2}) {
        const auto rate = experiment.failureRate(level, shots, rng);
        std::printf("L%d failures=%llu/%llu\n", level,
                    (unsigned long long)rate.successes(),
                    (unsigned long long)rate.trials());
    }
    return 0;
}

int
runCrosscheck(std::size_t shots)
{
    int failures = 0;
    for (const int level : {1, 2}) {
        const std::size_t level_shots = level == 1 ? shots : shots / 4;
        Rng rng(kSpotSeed);
        LogicalQubitExperiment scalar(
            ecc::steaneCode(), NoiseParameters::swept(kSpotError));
        const auto s = scalar.failureRate(level, level_shots, rng);
        const auto b = runLogicalExperiment(
            ecc::steaneCode(), NoiseParameters::swept(kSpotError), level,
            level_shots, kSpotSeed);
        const double margin = 1.5 * (s.halfWidth95() + b.halfWidth95())
            + 1e-4;
        const double delta = s.rate() > b.rate() ? s.rate() - b.rate()
                                                 : b.rate() - s.rate();
        const bool ok = delta <= margin;
        std::printf("L%d scalar=%.6f batched=%.6f |delta|=%.6f "
                    "margin=%.6f %s\n",
                    level, s.rate(), b.rate(), delta, margin,
                    ok ? "OK" : "FAIL");
        if (!ok)
            ++failures;
    }
    return failures ? 1 : 0;
}

int
runInterconnect(int threads, double fault_rate, int purification,
                double link_fidelity, int retry_budget,
                double compute_fraction, int memory_level)
{
    using namespace qla::network;
    const bool noisy = fault_rate > 0.0 || purification > 0
        || link_fidelity < 1.0;
    const bool hierarchy = compute_fraction < 1.0;

    std::vector<ProgramWorkload> workloads;
    workloads.emplace_back(qla::apps::toffoliNetworkCircuit(15, 12));
    workloads.emplace_back(qla::apps::qclaAdderCircuit(16));
    if (!noisy && !hierarchy)
        workloads.emplace_back(
            qla::apps::bandedQftCircuit(24, qla::apps::qftBandWidth(24)));

    CoSimSweepConfig sweep;
    sweep.bandwidths = {1, 2, 4};
    sweep.seeds = {1, 2};
    sweep.base.placement = PlacementStrategy::Random;
    sweep.threads = threads;
    if (hierarchy) {
        // Memory-hierarchy pipeline: the uniform mesh against the CQLA
        // split at the requested compute fraction, cache model live.
        sweep.bandwidths = {2, 4};
        sweep.seeds = {1};
        sweep.computeFractions = {1.0, compute_fraction};
        sweep.memoryCodeLevels = {memory_level};
    }
    if (noisy) {
        // Noisy pipeline: clean point vs each requested axis value,
        // with threshold gating and the retry/abandonment path live.
        sweep.bandwidths = {2, 4};
        sweep.seeds = {1};
        sweep.faultRates = fault_rate > 0.0
            ? std::vector<double>{0.0, fault_rate}
            : std::vector<double>{0.0};
        sweep.purificationLevels = purification > 0
            ? std::vector<int>{0, purification}
            : std::vector<int>{0};
        sweep.linkFidelities = link_fidelity < 1.0
            ? std::vector<double>{1.0, link_fidelity}
            : std::vector<double>{1.0};
        sweep.base.fidelity.opError = 1e-4;
        sweep.base.fidelity.deliveryThreshold = 0.88;
        sweep.base.fidelity.retryBudget = retry_budget;
    }
    const auto points = runCoSimSweep(workloads, sweep);
    for (const auto &point : points) {
        const auto &r = point.report;
        std::printf(
            "w=%zu bw=%d seed=%llu windows=%llu warmup=%llu "
            "stallW=%llu gatesStalled=%llu req=%llu mesh=%llu "
            "local=%llu deferred=%llu drift=%llu reroutes=%llu "
            "util=%.17g route=%.17g",
            point.workload, point.bandwidth,
            (unsigned long long)point.seed,
            (unsigned long long)r.windows,
            (unsigned long long)r.warmupWindows,
            (unsigned long long)r.stallWindows,
            (unsigned long long)r.gatesStalled,
            (unsigned long long)r.pairsRequested,
            (unsigned long long)r.pairsRoutedOnMesh,
            (unsigned long long)r.pairsLocal,
            (unsigned long long)r.deferredPairWindows,
            (unsigned long long)r.driftMoves,
            (unsigned long long)r.backoffReroutes, r.utilization,
            r.averageRouteLength);
        if (noisy)
            std::printf(
                " fr=%.17g lvl=%d ef=%.17g dropped=%llu lost=%llu "
                "rej=%llu aband=%llu demAband=%llu degraded=%llu "
                "retries=%llu backoffW=%llu penaltyW=%llu "
                "fidMean=%.17g fidMin=%.17g resid=%.17g",
                point.faultRate, point.purificationLevel,
                point.linkFidelity,
                (unsigned long long)r.pairsDropped,
                (unsigned long long)r.pairsLostInTransit,
                (unsigned long long)r.pairsRejectedFidelity,
                (unsigned long long)r.pairsAbandoned,
                (unsigned long long)r.demandsAbandoned,
                (unsigned long long)r.gatesDegraded,
                (unsigned long long)r.retryAttempts,
                (unsigned long long)r.retryBackoffWindows,
                (unsigned long long)r.fallbackPenaltyWindows,
                r.deliveredFidelityMean(), r.deliveredFidelityMin,
                r.residualEprError());
        if (hierarchy)
            std::printf(
                " cf=%.17g ml=%d touches=%llu hits=%llu miss=%llu "
                "inplace=%llu evict=%llu fetchReq=%llu wbReq=%llu "
                "convW=%llu cTiles=%llu mTiles=%llu",
                point.computeFraction, point.memoryLevel,
                (unsigned long long)r.operandTouches,
                (unsigned long long)r.memHits,
                (unsigned long long)r.memMisses,
                (unsigned long long)r.memInPlaceMisses,
                (unsigned long long)r.memEvictions,
                (unsigned long long)r.fetchPairsRequested,
                (unsigned long long)r.writebackPairsRequested,
                (unsigned long long)r.missConversionWindows,
                (unsigned long long)r.computeTiles,
                (unsigned long long)r.memoryTiles);
        std::printf("\n");
    }
    const auto stats = reduceCoSimSweep(points);
    std::printf("makespan_mean=%.17g util_mean=%.17g stall_mean=%.17g "
                "stalled_runs=%llu/%llu",
                stats.makespanWindows.mean(), stats.utilization.mean(),
                stats.stallWindows.mean(),
                (unsigned long long)stats.stalledRuns.successes(),
                (unsigned long long)stats.stalledRuns.trials());
    if (noisy)
        std::printf(" dropped_mean=%.17g abandoned_mean=%.17g "
                    "retries_mean=%.17g resid_mean=%.17g "
                    "degraded_runs=%llu/%llu",
                    stats.droppedPairs.mean(),
                    stats.abandonedPairs.mean(),
                    stats.retryAttempts.mean(),
                    stats.residualEprError.mean(),
                    (unsigned long long)stats.degradedRuns.successes(),
                    (unsigned long long)stats.degradedRuns.trials());
    if (hierarchy)
        std::printf(" miss_mean=%.17g missrate_mean=%.17g "
                    "evict_mean=%.17g",
                    stats.cacheMisses.mean(),
                    stats.cacheMissRate.mean(),
                    stats.cacheEvictions.mean());
    std::printf("\n");
    return 0;
}

int
printHelp()
{
    std::printf(
        "determinism_gate -- CI byte-diff gate for the Monte Carlo and\n"
        "co-simulation sweeps (see docs/determinism.md).\n"
        "\n"
        "  --mode M           sweep | spot | crosscheck | interconnect\n"
        "  --threads N        worker threads (output must not depend "
        "on N)\n"
        "  --shots S          Monte Carlo shots per point\n"
        "  --engine E         spot mode: batched | scalar\n"
        "  --group G          spot/batched: lane-group width in words\n"
        "  --compaction C     spot/batched: lane compaction on | off\n"
        "  --fill F           spot/batched: segment-migration fill "
        "threshold\n"
        "  --width W          spot/batched: SIMD tile width in words\n"
        "  --sampling S       spot/batched: site | trace fault "
        "sampling\n"
        "  --fire-plan-cache C  spot/batched: fire-plan cache on | "
        "off\n"
        "  --fault-rate F     interconnect: uniform link-fault rate "
        "axis\n"
        "  --purification L   interconnect: purification-level axis\n"
        "  --link-fidelity E  interconnect: elementary link-fidelity "
        "axis\n"
        "  --retry-budget R   interconnect: below-threshold retries "
        "per demand\n"
        "  --compute-fraction C  interconnect: CQLA compute-region "
        "fraction axis (< 1 enables the memory hierarchy)\n"
        "  --memory-level M   interconnect: memory-region code level "
        "(1 or 2)\n"
        "  --help             this text\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = "sweep";
    std::string engine = "batched";
    int threads = 1;
    std::size_t shots = 4000;
    std::size_t group = BatchOptions{}.groupWords;
    bool compaction = true;
    double fill = BatchOptions{}.migrationFillThreshold;
    std::size_t width = BatchOptions{}.simdWidth;
    FaultSampling sampling = BatchOptions{}.faultSampling;
    bool fire_plan_cache = BatchOptions{}.firePlanCache;
    double fault_rate = 0.0;
    int purification = 0;
    double link_fidelity = 1.0;
    int retry_budget = 3;
    double compute_fraction = 1.0;
    int memory_level = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--mode")
            mode = next();
        else if (arg == "--engine")
            engine = next();
        else if (arg == "--threads")
            threads = std::atoi(next());
        else if (arg == "--shots")
            shots = std::strtoull(next(), nullptr, 10);
        else if (arg == "--group")
            group = std::strtoull(next(), nullptr, 10);
        else if (arg == "--compaction")
            compaction = std::strcmp(next(), "off") != 0;
        else if (arg == "--fill")
            fill = std::atof(next());
        else if (arg == "--width")
            width = std::strtoull(next(), nullptr, 10);
        else if (arg == "--sampling")
            sampling = std::strcmp(next(), "site") == 0
                ? FaultSampling::SiteGeometric
                : FaultSampling::TraceDraws;
        else if (arg == "--fire-plan-cache")
            fire_plan_cache = std::strcmp(next(), "off") != 0;
        else if (arg == "--fault-rate")
            fault_rate = std::atof(next());
        else if (arg == "--purification")
            purification = std::atoi(next());
        else if (arg == "--link-fidelity")
            link_fidelity = std::atof(next());
        else if (arg == "--retry-budget")
            retry_budget = std::atoi(next());
        else if (arg == "--compute-fraction")
            compute_fraction = std::atof(next());
        else if (arg == "--memory-level")
            memory_level = std::atoi(next());
        else if (arg == "--help")
            return printHelp();
        else {
            std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
            return 2;
        }
    }

    if (mode == "sweep")
        return runSweep(threads, shots);
    if (mode == "spot")
        return engine == "scalar"
            ? runSpotScalar(shots)
            : runSpotBatched(group, compaction, fill, width, sampling,
                             fire_plan_cache, threads, shots);
    if (mode == "crosscheck")
        return runCrosscheck(shots);
    if (mode == "interconnect")
        return runInterconnect(threads, fault_rate, purification,
                               link_fidelity, retry_budget,
                               compute_fraction, memory_level);
    std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
    return 2;
}
