#include "serve/sweep_runner.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <mutex>

#include "arq/monte_carlo.h"
#include "network/cosim.h"
#include "sim/shot_scheduler.h"

namespace qla::serve {

ExperimentCache &
SweepCaches::workerCache(std::size_t worker)
{
    while (perWorkerExperiments.size() <= worker)
        perWorkerExperiments.push_back(
            std::make_unique<ExperimentCache>());
    return *perWorkerExperiments[worker];
}

CacheCounters
SweepCaches::counters() const
{
    CacheCounters total = workloads.counters();
    for (const auto &cache : perWorkerExperiments) {
        const CacheCounters c = cache->counters();
        total.traceRecordings += c.traceRecordings;
        total.traceReplays += c.traceReplays;
    }
    return total;
}

void
SweepCaches::resetCounters()
{
    workloads.resetCounters();
    for (auto &cache : perWorkerExperiments)
        cache->resetCounters();
}

namespace {

void
appendf(std::string &out, const char *format, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *format, ...)
{
    char buf[1024];
    va_list args;
    va_start(args, format);
    const int n = std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    if (n > 0)
        out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

std::string
renderThresholdOutput(
    const SweepJobSpec &spec, const JobPartition &partition,
    const std::vector<ThresholdChunkPartial> &partials)
{
    // Same fixed-order reduction as arq::thresholdSweep: chunk partials
    // merge into task rates in ascending chunk order, tasks fold into
    // points, and the rendering mirrors the determinism gate's sweep
    // mode -- so serve output is byte-comparable against an in-process
    // sweep of the same spec.
    std::vector<sim::RateStat> task_rates(partition.tasks.size());
    for (const ThresholdChunkPartial &partial : partials)
        task_rates[partition.chunks[partial.chunk].task].merge(
            partial.failures);

    std::vector<arq::ThresholdPoint> points(
        spec.threshold.physicalErrors.size());
    for (std::size_t t = 0; t < partition.tasks.size(); ++t) {
        const ThresholdTask &task = partition.tasks[t];
        arq::ThresholdPoint &point = points[task.point];
        point.physicalError = task.physicalError;
        const sim::RateStat &rate = task_rates[t];
        if (task.level == 1) {
            point.level1Failure = rate.rate();
            point.level1Error = rate.halfWidth95();
        } else {
            point.level2Failure = rate.rate();
            point.level2Error = rate.halfWidth95();
        }
    }

    std::string out;
    for (const arq::ThresholdPoint &point : points)
        appendf(out, "p=%.17g L1=%.17g +- %.17g L2=%.17g +- %.17g\n",
                point.physicalError, point.level1Failure,
                point.level1Error, point.level2Failure,
                point.level2Error);
    appendf(out, "threshold=%.17g\n", arq::estimateThreshold(points));
    return out;
}

std::string
renderCoSimOutput(const SweepJobSpec &spec, const JobPartition &partition,
                  const std::vector<CoSimChunkPartial> &partials)
{
    using network::CoSimSweepPoint;
    const bool noisy = spec.cosim.noisy();
    const bool hierarchy = spec.cosim.hierarchical();

    // Point lines + reduce line in the determinism gate's interconnect
    // format, so serve output is byte-comparable against the gate.
    std::vector<CoSimSweepPoint> points;
    points.reserve(partials.size());
    for (const CoSimChunkPartial &partial : partials) {
        const CoSimPointTask &task = partition.points[partial.chunk];
        CoSimSweepPoint point;
        point.workload = task.workload;
        point.bandwidth = task.bandwidth;
        point.faultRate = task.faultRate;
        point.purificationLevel = task.purificationLevel;
        point.linkFidelity = task.linkFidelity;
        point.computeFraction = task.computeFraction;
        point.memoryLevel = task.memoryLevel;
        point.seed = task.seed;
        point.report = partial.report;
        points.push_back(point);
    }

    std::string out;
    for (const CoSimSweepPoint &point : points) {
        const network::CoSimReport &r = point.report;
        appendf(out,
                "w=%zu bw=%d seed=%llu windows=%llu warmup=%llu "
                "stallW=%llu gatesStalled=%llu req=%llu mesh=%llu "
                "local=%llu deferred=%llu drift=%llu reroutes=%llu "
                "util=%.17g route=%.17g",
                point.workload, point.bandwidth,
                (unsigned long long)point.seed,
                (unsigned long long)r.windows,
                (unsigned long long)r.warmupWindows,
                (unsigned long long)r.stallWindows,
                (unsigned long long)r.gatesStalled,
                (unsigned long long)r.pairsRequested,
                (unsigned long long)r.pairsRoutedOnMesh,
                (unsigned long long)r.pairsLocal,
                (unsigned long long)r.deferredPairWindows,
                (unsigned long long)r.driftMoves,
                (unsigned long long)r.backoffReroutes, r.utilization,
                r.averageRouteLength);
        if (noisy)
            appendf(out,
                    " fr=%.17g lvl=%d ef=%.17g dropped=%llu lost=%llu "
                    "rej=%llu aband=%llu demAband=%llu degraded=%llu "
                    "retries=%llu backoffW=%llu penaltyW=%llu "
                    "fidMean=%.17g fidMin=%.17g resid=%.17g",
                    point.faultRate, point.purificationLevel,
                    point.linkFidelity,
                    (unsigned long long)r.pairsDropped,
                    (unsigned long long)r.pairsLostInTransit,
                    (unsigned long long)r.pairsRejectedFidelity,
                    (unsigned long long)r.pairsAbandoned,
                    (unsigned long long)r.demandsAbandoned,
                    (unsigned long long)r.gatesDegraded,
                    (unsigned long long)r.retryAttempts,
                    (unsigned long long)r.retryBackoffWindows,
                    (unsigned long long)r.fallbackPenaltyWindows,
                    r.deliveredFidelityMean(), r.deliveredFidelityMin,
                    r.residualEprError());
        if (hierarchy)
            appendf(out,
                    " cf=%.17g ml=%d touches=%llu hits=%llu miss=%llu "
                    "inplace=%llu evict=%llu fetchReq=%llu wbReq=%llu "
                    "convW=%llu cTiles=%llu mTiles=%llu",
                    point.computeFraction, point.memoryLevel,
                    (unsigned long long)r.operandTouches,
                    (unsigned long long)r.memHits,
                    (unsigned long long)r.memMisses,
                    (unsigned long long)r.memInPlaceMisses,
                    (unsigned long long)r.memEvictions,
                    (unsigned long long)r.fetchPairsRequested,
                    (unsigned long long)r.writebackPairsRequested,
                    (unsigned long long)r.missConversionWindows,
                    (unsigned long long)r.computeTiles,
                    (unsigned long long)r.memoryTiles);
        out += '\n';
    }

    const network::CoSimSweepStats stats
        = network::reduceCoSimSweep(points);
    appendf(out,
            "makespan_mean=%.17g util_mean=%.17g stall_mean=%.17g "
            "stalled_runs=%llu/%llu",
            stats.makespanWindows.mean(), stats.utilization.mean(),
            stats.stallWindows.mean(),
            (unsigned long long)stats.stalledRuns.successes(),
            (unsigned long long)stats.stalledRuns.trials());
    if (noisy)
        appendf(out,
                " dropped_mean=%.17g abandoned_mean=%.17g "
                "retries_mean=%.17g resid_mean=%.17g "
                "degraded_runs=%llu/%llu",
                stats.droppedPairs.mean(), stats.abandonedPairs.mean(),
                stats.retryAttempts.mean(),
                stats.residualEprError.mean(),
                (unsigned long long)stats.degradedRuns.successes(),
                (unsigned long long)stats.degradedRuns.trials());
    if (hierarchy)
        appendf(out,
                " miss_mean=%.17g missrate_mean=%.17g evict_mean=%.17g",
                stats.cacheMisses.mean(), stats.cacheMissRate.mean(),
                stats.cacheEvictions.mean());
    out += '\n';
    return out;
}

/** Shared record-side state of one run (guarded by its mutex). */
struct RunState
{
    std::mutex mutex;
    std::map<std::size_t, ThresholdChunkPartial> threshold;
    std::map<std::size_t, CoSimChunkPartial> cosim;
    std::size_t computed = 0;
    std::size_t loaded = 0;
    bool killed = false;
    std::string checkpointError;

    std::size_t done() const { return loaded + computed; }

    CheckpointData snapshot(const SweepJobSpec &spec,
                            std::size_t total_chunks) const
    {
        CheckpointData data;
        data.configHash = spec.configHash();
        data.kind = spec.kind;
        data.totalChunks = total_chunks;
        for (const auto &[index, partial] : threshold)
            data.threshold.push_back(partial);
        for (const auto &[index, partial] : cosim)
            data.cosim.push_back(partial);
        return data;
    }
};

network::CoSimConfig
baseCoSimConfig(const CoSimJobParams &params)
{
    network::CoSimConfig base;
    base.placement = params.randomPlacement
        ? network::PlacementStrategy::Random
        : network::PlacementStrategy::Affinity;
    base.fidelity.opError = params.opError;
    base.fidelity.deliveryThreshold = params.deliveryThreshold;
    base.fidelity.retryBudget = params.retryBudget;
    return base;
}

/** The per-point config construction of network::runCoSimSweep. */
network::CoSimConfig
pointCoSimConfig(const network::CoSimConfig &base,
                 const CoSimPointTask &point)
{
    network::CoSimConfig cosim = base;
    cosim.bandwidth = point.bandwidth;
    cosim.seed = point.seed;
    cosim.linkFaults = base.linkFaults.atRate(point.faultRate);
    cosim.fidelity.elementaryFidelity = point.linkFidelity;
    cosim.fidelity.purificationLevel = point.purificationLevel;
    cosim.memory.computeFraction = point.computeFraction;
    cosim.memory.memoryCodeLevel = point.memoryLevel;
    return cosim;
}

} // namespace

RunOutcome
runSweepJob(const SweepJobSpec &spec, const RunnerOptions &options,
            SweepCaches &caches)
{
    RunOutcome outcome;
    if (options.shardCount < 1 || options.shardIndex < 0
        || options.shardIndex >= options.shardCount) {
        outcome.error = "bad shard selection";
        return outcome;
    }
    if (options.shardCount > 1 && options.checkpointPath.empty()) {
        outcome.error = "sharded runs need --checkpoint (the shard's "
                        "result artifact)";
        return outcome;
    }

    const JobPartition partition = partitionJob(spec);
    const std::uint64_t config_hash = spec.configHash();

    std::vector<std::size_t> owned;
    for (const SweepChunk &chunk : partition.chunks)
        if (chunkInShard(chunk.index, options.shardIndex,
                         options.shardCount))
            owned.push_back(chunk.index);

    RunState state;
    if (!options.checkpointPath.empty()
        && checkpointFileExists(options.checkpointPath)) {
        CheckpointData data;
        std::string error;
        if (!loadCheckpointFile(options.checkpointPath, data, error)) {
            outcome.error = error;
            return outcome;
        }
        if (data.configHash != config_hash) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "checkpoint config hash %016llx does not "
                          "match job %016llx",
                          (unsigned long long)data.configHash,
                          (unsigned long long)config_hash);
            outcome.error = options.checkpointPath + ": " + buf;
            return outcome;
        }
        if (data.kind != spec.kind
            || data.totalChunks != partition.chunks.size()) {
            outcome.error = options.checkpointPath
                + ": checkpoint does not match the job's partition";
            return outcome;
        }
        for (const ThresholdChunkPartial &partial : data.threshold)
            state.threshold.emplace(partial.chunk, partial);
        for (const CoSimChunkPartial &partial : data.cosim)
            state.cosim.emplace(partial.chunk, partial);
        state.loaded = state.threshold.size() + state.cosim.size();
    }

    std::vector<std::size_t> pending;
    for (const std::size_t index : owned)
        if (!state.threshold.count(index) && !state.cosim.count(index))
            pending.push_back(index);

    // Lowered workloads pinned for the scheduler's lifetime (cosim).
    std::vector<std::shared_ptr<const network::ProgramWorkload>>
        workloads;
    network::CoSimConfig base_config;
    if (spec.kind == SweepKind::CoSim && !pending.empty()) {
        for (const WorkloadSpec &workload : spec.cosim.workloads)
            workloads.push_back(caches.workloads.acquire(workload));
        base_config = baseCoSimConfig(spec.cosim);
    }

    const std::size_t total_owned = owned.size();
    auto record_progress = [&](const std::string &line) {
        if (options.progress)
            options.progress(line);
    };

    // Incremental per-task rates for the streaming Wilson intervals
    // (integer-count merges, so completion order cannot skew them).
    std::vector<sim::RateStat> task_rates(partition.tasks.size());

    auto maybe_checkpoint = [&](bool force) {
        if (options.checkpointPath.empty())
            return;
        if (!force && options.checkpointEveryChunks > 1
            && state.computed % options.checkpointEveryChunks != 0)
            return;
        std::string error;
        if (!saveCheckpointFile(options.checkpointPath,
                                state.snapshot(spec,
                                               partition.chunks.size()),
                                error)
            && state.checkpointError.empty())
            state.checkpointError = error;
    };

    sim::ShotScheduler scheduler(options.workers);
    scheduler.run(pending.size(), [&](std::size_t job, int worker) {
        {
            std::lock_guard<std::mutex> lock(state.mutex);
            if (state.killed)
                return;
        }
        const SweepChunk &chunk = partition.chunks[pending[job]];

        if (spec.kind == SweepKind::Threshold) {
            const ThresholdTask &task = partition.tasks[chunk.task];
            auto experiment = caches.workerCache(worker).acquire(
                task.physicalError, spec.threshold.groupWords);
            ThresholdChunkPartial partial;
            partial.chunk = chunk.index;
            partial.failures = experiment->failureRateRange(
                task.level, chunk.firstShot, chunk.shotCount, task.seed,
                &partial.stats);

            std::lock_guard<std::mutex> lock(state.mutex);
            state.threshold.emplace(partial.chunk, partial);
            ++state.computed;
            task_rates[chunk.task].merge(partial.failures);
            const sim::RateStat &rate = task_rates[chunk.task];
            std::string line;
            appendf(line,
                    "progress %zu/%zu p=%.17g L%d rate=%.17g +- %.17g",
                    state.done(), total_owned, task.physicalError,
                    task.level, rate.rate(), rate.halfWidth95());
            record_progress(line);
            if (options.killAfterChunks
                && state.computed >= options.killAfterChunks)
                state.killed = true;
            maybe_checkpoint(state.killed);
            return;
        }

        const CoSimPointTask &point = partition.points[chunk.task];
        network::ProgramCoSimulator simulator(
            *workloads[point.workload],
            pointCoSimConfig(base_config, point));
        CoSimChunkPartial partial;
        partial.chunk = chunk.index;
        partial.report = simulator.run();
        partial.report.perGate.clear(); // Not persisted; keep loaded
                                        // and computed partials equal.

        std::lock_guard<std::mutex> lock(state.mutex);
        state.cosim.emplace(partial.chunk, partial);
        ++state.computed;
        std::string line;
        appendf(line, "progress %zu/%zu w=%zu bw=%d seed=%llu "
                      "windows=%llu",
                state.done(), total_owned, point.workload,
                point.bandwidth, (unsigned long long)point.seed,
                (unsigned long long)partial.report.windows);
        record_progress(line);
        if (options.killAfterChunks
            && state.computed >= options.killAfterChunks)
            state.killed = true;
        maybe_checkpoint(state.killed);
    });

    maybe_checkpoint(true);
    if (!state.checkpointError.empty()) {
        outcome.error = state.checkpointError;
        return outcome;
    }

    outcome.chunksComputed = state.computed;
    outcome.chunksFromCheckpoint = state.loaded;
    outcome.complete = state.done() == total_owned;
    if (outcome.complete && options.shardCount == 1) {
        std::vector<ThresholdChunkPartial> threshold_partials;
        for (const auto &[index, partial] : state.threshold)
            threshold_partials.push_back(partial);
        std::vector<CoSimChunkPartial> cosim_partials;
        for (const auto &[index, partial] : state.cosim)
            cosim_partials.push_back(partial);
        outcome.output = renderSweepOutput(spec, partition,
                                           threshold_partials,
                                           cosim_partials);
    }
    return outcome;
}

std::string
renderSweepOutput(
    const SweepJobSpec &spec, const JobPartition &partition,
    const std::vector<ThresholdChunkPartial> &threshold_partials,
    const std::vector<CoSimChunkPartial> &cosim_partials)
{
    return spec.kind == SweepKind::Threshold
        ? renderThresholdOutput(spec, partition, threshold_partials)
        : renderCoSimOutput(spec, partition, cosim_partials);
}

bool
mergeSweepCheckpoints(const SweepJobSpec &spec,
                      const std::vector<CheckpointData> &shards,
                      std::string &output, std::string &error)
{
    const JobPartition partition = partitionJob(spec);
    const std::uint64_t config_hash = spec.configHash();

    std::map<std::size_t, ThresholdChunkPartial> threshold;
    std::map<std::size_t, CoSimChunkPartial> cosim;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const CheckpointData &shard = shards[s];
        if (shard.configHash != config_hash) {
            error = "shard " + std::to_string(s)
                + " carries a different config hash than the job";
            return false;
        }
        if (shard.kind != spec.kind
            || shard.totalChunks != partition.chunks.size()) {
            error = "shard " + std::to_string(s)
                + " does not match the job's partition";
            return false;
        }
        for (const ThresholdChunkPartial &partial : shard.threshold)
            if (!threshold.emplace(partial.chunk, partial).second) {
                error = "chunk " + std::to_string(partial.chunk)
                    + " appears in more than one shard";
                return false;
            }
        for (const CoSimChunkPartial &partial : shard.cosim)
            if (!cosim.emplace(partial.chunk, partial).second) {
                error = "chunk " + std::to_string(partial.chunk)
                    + " appears in more than one shard";
                return false;
            }
    }
    const std::size_t have = threshold.size() + cosim.size();
    if (have != partition.chunks.size()) {
        error = "shards cover " + std::to_string(have) + " of "
            + std::to_string(partition.chunks.size()) + " chunks";
        return false;
    }

    std::vector<ThresholdChunkPartial> threshold_partials;
    for (const auto &[index, partial] : threshold)
        threshold_partials.push_back(partial);
    std::vector<CoSimChunkPartial> cosim_partials;
    for (const auto &[index, partial] : cosim)
        cosim_partials.push_back(partial);
    output = renderSweepOutput(spec, partition, threshold_partials,
                               cosim_partials);
    return true;
}

} // namespace qla::serve
