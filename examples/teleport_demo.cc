/**
 * @file
 * Teleportation demonstration on both simulation back-ends.
 *
 * 1. Dense simulator: teleport a non-Clifford (T-rotated) state and
 *    verify the received state matches the source exactly.
 * 2. Stabilizer simulator: teleport each half of the verification done
 *    via deterministic stabilizer checks.
 * 3. Werner model: what the interconnect does to that state's fidelity
 *    across a real chip distance, with and without purification.
 */

#include <cstdio>

#include "arq/executor.h"
#include "circuit/builders.h"
#include "common/rng.h"
#include "quantum/statevector.h"
#include "quantum/tableau.h"
#include "teleport/connection_model.h"

using namespace qla;
using namespace qla::quantum;

int
main()
{
    Rng rng(31337);

    // 1. Teleport |psi> = T H |0> -- outside the Clifford group, so
    //    only the dense engine can verify it.
    std::printf("== teleporting a T-rotated state (dense engine) ==\n");
    StateVector reference(1);
    reference.h(0);
    reference.t(0);

    double worst = 1.0;
    for (int trial = 0; trial < 8; ++trial) {
        StateVector psi(3);
        psi.h(0);
        psi.t(0); // source state on qubit 0
        arq::executeOnStateVector(circuit::teleportation(), psi, rng);
        // Qubit 2 now holds the state; compare against the reference by
        // checking the Bloch components via Pauli expectations.
        StateVector single(1);
        // Project: measure nothing -- instead compare expectations.
        const double ex = psi.expectation(
            PauliString::fromString("IIX"));
        const double ey = psi.expectation(
            PauliString::fromString("IIY"));
        const double ez = psi.expectation(
            PauliString::fromString("IIZ"));
        const double rx = reference.expectation(
            PauliString::fromString("X"));
        const double ry = reference.expectation(
            PauliString::fromString("Y"));
        const double rz = reference.expectation(
            PauliString::fromString("Z"));
        const double overlap = 0.5
            * (1.0 + ex * rx + ey * ry + ez * rz);
        worst = std::min(worst, overlap);
    }
    std::printf("worst-case received-state fidelity over 8 trials: "
                "%.6f %s\n\n",
                worst, worst > 0.999999 ? "[exact]" : "[FAIL]");

    // 2. Stabilizer engine: teleport one half of a Bell pair and verify
    //    the entanglement moved with it (deterministic check).
    std::printf("== teleporting entanglement (stabilizer engine) ==\n");
    int ok = 0;
    const int trials = 64;
    for (int t = 0; t < trials; ++t) {
        // Qubits: 0 = partner, 1 = source (entangled with 0),
        // 2,3 = EPR channel pair, 3 receives.
        StabilizerTableau state(4);
        state.h(0);
        state.cnot(0, 1); // Bell(0,1)
        state.h(2);
        state.cnot(2, 3); // channel EPR(2,3)
        // Bell measurement of 1 against 2.
        state.cnot(1, 2);
        state.h(1);
        const bool m1 = state.measureZ(1, rng);
        const bool m2 = state.measureZ(2, rng);
        if (m2)
            state.x(3);
        if (m1)
            state.z(3);
        // Now (0,3) must be a Bell pair: XX and ZZ both +1.
        const auto xx = state.deterministicValue(
            PauliString::fromString("XIIX"));
        const auto zz = state.deterministicValue(
            PauliString::fromString("ZIIZ"));
        if (xx && zz && !*xx && !*zz)
            ++ok;
    }
    std::printf("entanglement arrived intact in %d/%d trials\n\n", ok,
                trials);

    // 3. What the physical interconnect would do to the EPR channel.
    std::printf("== the same EPR pair across 6000 chip cells ==\n");
    const teleport::RepeaterConfig config;
    const teleport::RepeaterChain chain(config);
    const double raw = teleport::simplisticTeleportInfidelity(config,
                                                              6000);
    std::printf("unpurified single pair infidelity: %.3f (useless)\n",
                raw);
    const auto plan = chain.plan(6000, 100);
    std::printf("repeater chain (d=100): infidelity %.3f in %.3f s -- "
                "the Figure-9 design point\n",
                1.0 - plan.finalFidelity, plan.connectionTime);
    return 0;
}
