#include "ecc/latency.h"

#include <cmath>

#include "common/logging.h"

namespace qla::ecc {

EccLatencyModel::EccLatencyModel(const CssCode &code,
                                 const TechnologyParameters &tech,
                                 EccLatencyConfig config)
    : code_(code), tech_(tech), config_(std::move(config))
{
}

Seconds
EccLatencyModel::moveCost(Cells cells, int turns) const
{
    return tech_.moveTime(cells, turns);
}

Seconds
EccLatencyModel::cnotStep(int level) const
{
    qla_assert(level >= 1);
    const Cells cells = level == 1 ? config_.intraBlockCells
                                   : config_.interBlockCells;
    const int turns = level == 1 ? config_.intraBlockTurns
                                 : config_.interBlockTurns;
    // Move one transversal partner in, interact, move it back. The seven
    // (or 7^(L-1)) ion pairs of a transversal step operate in parallel.
    return 2.0 * moveCost(cells, turns) + tech_.doubleGateTime;
}

Seconds
EccLatencyModel::gateTime(int level) const
{
    qla_assert(level >= 0);
    // Transversal application: all physical gates fire in parallel.
    return tech_.singleGateTime;
}

Seconds
EccLatencyModel::blockReadoutTime() const
{
    const auto n = static_cast<double>(code_.blockLength());
    const double rounds = std::ceil(
        n / static_cast<double>(config_.measurementPortsPerBlock));
    return rounds * tech_.measureTime;
}

Seconds
EccLatencyModel::syndromeReadoutTime(int level) const
{
    qla_assert(level >= 1);
    if (!config_.serializeConglomerationReadout)
        return blockReadoutTime();
    double ions = 1.0;
    for (int l = 0; l < level; ++l)
        ions *= static_cast<double>(code_.blockLength());
    const double rounds = std::ceil(
        ions / static_cast<double>(config_.measurementPortsPerBlock));
    return rounds * tech_.measureTime;
}

Seconds
EccLatencyModel::encodeTime(int level) const
{
    qla_assert(level >= 1);
    const auto &sched = code_.zeroEncoder();
    // One H layer (parallel over pivots / pivot blocks) plus the CNOT
    // network depth, each layer a full transversal CNOT step.
    return tech_.singleGateTime
        + static_cast<double>(sched.depth) * cnotStep(level);
}

Seconds
EccLatencyModel::prepTime(int level) const
{
    qla_assert(level >= 0);
    if (level == 0)
        return 0.0;

    // Sub-block preparations proceed in parallel across the
    // conglomeration, so only one lower-level prep is on the critical
    // path.
    const Seconds sub_prep = prepTime(level - 1);
    const Seconds encode = encodeTime(level);
    const Seconds lower_ecc = level >= 2
        ? config_.lowerEccRoundsInPrep * eccTime(level - 1)
        : 0.0;
    // Verification: transversal CNOT onto the verification register and
    // per-block parallel readout.
    const Seconds verify = config_.verificationRounds
        * (cnotStep(level) + blockReadoutTime());
    return sub_prep + encode + lower_ecc + verify;
}

Seconds
EccLatencyModel::syndromeTime(int level) const
{
    qla_assert(level >= 1);
    const Seconds interact = cnotStep(level);
    const Seconds lower_after_gate = level >= 2
        ? config_.lowerEccRoundsAfterGate * eccTime(level - 1)
        : 0.0;
    const Seconds lower_after_readout = level >= 2
        ? config_.lowerEccRoundsAfterReadout * eccTime(level - 1)
        : 0.0;
    return prepTime(level) + interact + lower_after_gate
        + syndromeReadoutTime(level) + lower_after_readout;
}

double
EccLatencyModel::nontrivialRate(int level) const
{
    qla_assert(level >= 1);
    const auto &rates = config_.nontrivialSyndromeRate;
    if (rates.empty())
        return 0.0;
    const std::size_t idx = std::min<std::size_t>(level - 1,
                                                  rates.size() - 1);
    return rates[idx];
}

Seconds
EccLatencyModel::eccTime(int level) const
{
    qla_assert(level >= 0);
    if (level == 0)
        return 0.0;
    const Seconds synd = syndromeTime(level);
    // Equation 1: trivial branch extracts one syndrome per error type
    // (X then Z, serial); the non-trivial branch repeats the extraction,
    // applies the correction, and finishes with a lower-level EC cycle.
    const Seconds trivial = 2.0 * synd;
    const Seconds nontrivial = 2.0
        * (2.0 * synd + gateTime(level) + eccTime(level - 1));
    const double q = nontrivialRate(level);
    return (1.0 - q) * trivial + q * nontrivial;
}

} // namespace qla::ecc
