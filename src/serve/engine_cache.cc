#include "serve/engine_cache.h"

#include <cstring>

#include "apps/qcla.h"
#include "apps/qft.h"
#include "apps/toffoli.h"
#include "ecc/steane.h"

namespace qla::serve {

namespace {

std::uint64_t
doubleBits(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

} // namespace

std::shared_ptr<arq::BatchedLogicalQubitExperiment>
ExperimentCache::acquire(double p, std::size_t group_words)
{
    const Key key{doubleBits(p), group_words};
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = cache_.find(key);
    if (found != cache_.end()) {
        ++counters_.traceReplays;
        return found->second;
    }

    if (cache_.size() >= slots_) {
        cache_.erase(insertionOrder_[nextEvict_]);
        insertionOrder_[nextEvict_] = key;
        nextEvict_ = (nextEvict_ + 1) % slots_;
    } else {
        insertionOrder_.push_back(key);
    }
    arq::BatchOptions batch;
    batch.groupWords = group_words;
    // Same construction as thresholdSweep's worker cache: recording the
    // level-1/2 traces for this noise point happens here, once.
    auto experiment
        = std::make_shared<arq::BatchedLogicalQubitExperiment>(
            ecc::steaneCode(), arq::NoiseParameters::swept(p),
            arq::LayoutDistances{}, 16, batch);
    ++counters_.traceRecordings;
    cache_[key] = experiment;
    return experiment;
}

CacheCounters
ExperimentCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
ExperimentCache::resetCounters()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_ = CacheCounters{};
}

network::ProgramWorkload
lowerWorkload(const WorkloadSpec &spec)
{
    switch (spec.app) {
    case WorkloadSpec::App::Toffoli:
        return network::ProgramWorkload(
            apps::toffoliNetworkCircuit(spec.size, spec.depth));
    case WorkloadSpec::App::Qcla:
        return network::ProgramWorkload(apps::qclaAdderCircuit(spec.size));
    case WorkloadSpec::App::BandedQft:
    default:
        return network::ProgramWorkload(apps::bandedQftCircuit(
            spec.size,
            spec.depth ? spec.depth : apps::qftBandWidth(spec.size)));
    }
}

std::shared_ptr<const network::ProgramWorkload>
WorkloadCache::acquire(const WorkloadSpec &spec)
{
    const std::string key = spec.token();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto found = cache_.find(key);
        if (found != cache_.end()) {
            ++counters_.workloadReplays;
            return found->second;
        }
    }
    // Lower outside the lock (lowering a wide QFT is not cheap);
    // a racing duplicate lowering is wasted work, never a wrong result.
    auto workload = std::make_shared<const network::ProgramWorkload>(
        lowerWorkload(spec));
    std::lock_guard<std::mutex> lock(mutex_);
    auto [slot, inserted] = cache_.emplace(key, std::move(workload));
    if (inserted)
        ++counters_.workloadLowerings;
    else
        ++counters_.workloadReplays;
    return slot->second;
}

CacheCounters
WorkloadCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
WorkloadCache::resetCounters()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_ = CacheCounters{};
}

} // namespace qla::serve
