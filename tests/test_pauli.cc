/**
 * @file
 * Pauli-algebra tests: multiplication phases, commutation, parsing --
 * including an exhaustive parameterized sweep over all single-qubit
 * Pauli products.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quantum/pauli.h"

using namespace qla::quantum;

TEST(Pauli, FromBits)
{
    EXPECT_EQ(pauliFromBits(false, false), Pauli::I);
    EXPECT_EQ(pauliFromBits(true, false), Pauli::X);
    EXPECT_EQ(pauliFromBits(false, true), Pauli::Z);
    EXPECT_EQ(pauliFromBits(true, true), Pauli::Y);
}

TEST(PauliString, ParseAndPrintRoundTrip)
{
    for (const char *text : {"+XIZY", "-YYZ", "+IIII", "-X"}) {
        EXPECT_EQ(PauliString::fromString(text).toString(), text);
    }
}

TEST(PauliString, WeightCountsNonIdentity)
{
    EXPECT_EQ(PauliString::fromString("XIZYI").weight(), 3u);
    EXPECT_EQ(PauliString(5).weight(), 0u);
}

TEST(PauliString, SignRequiresHermitian)
{
    auto p = PauliString::fromString("X");
    EXPECT_EQ(p.sign(), 1);
    p.setPhaseExponent(2);
    EXPECT_EQ(p.sign(), -1);
}

namespace {

/** Expected single-qubit product table: (a, b, result, i-exponent). */
struct ProductCase
{
    const char *a;
    const char *b;
    const char *result_letters;
    int phase;
};

const ProductCase kProducts[] = {
    {"I", "I", "I", 0}, {"I", "X", "X", 0}, {"I", "Y", "Y", 0},
    {"I", "Z", "Z", 0}, {"X", "I", "X", 0}, {"X", "X", "I", 0},
    {"X", "Y", "Z", 1}, {"X", "Z", "Y", 3}, {"Y", "I", "Y", 0},
    {"Y", "X", "Z", 3}, {"Y", "Y", "I", 0}, {"Y", "Z", "X", 1},
    {"Z", "I", "Z", 0}, {"Z", "X", "Y", 1}, {"Z", "Y", "X", 3},
    {"Z", "Z", "I", 0},
};

class PauliProductTest : public ::testing::TestWithParam<ProductCase>
{
};

} // namespace

TEST_P(PauliProductTest, SingleQubitProductTable)
{
    const auto &c = GetParam();
    PauliString a = PauliString::fromString(c.a);
    const PauliString b = PauliString::fromString(c.b);
    a *= b;
    EXPECT_EQ(a.at(0), PauliString::fromString(c.result_letters).at(0))
        << c.a << " * " << c.b;
    EXPECT_EQ(a.phaseExponent(), c.phase) << c.a << " * " << c.b;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PauliProductTest,
                         ::testing::ValuesIn(kProducts));

TEST(PauliString, MultiQubitProductPhasesCompose)
{
    // (X ox Z) * (Y ox Y) = (XY) ox (ZY) = (iZ) ox (-iX) = Z ox X.
    PauliString a = PauliString::fromString("XZ");
    a *= PauliString::fromString("YY");
    EXPECT_EQ(a.toString(), "+ZX");
}

TEST(PauliString, ProductIsAssociative)
{
    const auto a = PauliString::fromString("XYZI");
    const auto b = PauliString::fromString("ZZXY");
    const auto c = PauliString::fromString("YIXZ");
    EXPECT_EQ(((a * b) * c).toString(), (a * (b * c)).toString());
}

TEST(PauliString, SelfProductIsIdentity)
{
    for (const char *text : {"XYZ", "ZZZZ", "YIYI"}) {
        const auto p = PauliString::fromString(text);
        const auto square = p * p;
        EXPECT_EQ(square.weight(), 0u);
        EXPECT_EQ(square.phaseExponent(), 0);
    }
}

TEST(PauliString, CommutationRules)
{
    const auto x = PauliString::fromString("X");
    const auto z = PauliString::fromString("Z");
    const auto y = PauliString::fromString("Y");
    EXPECT_FALSE(x.commutesWith(z));
    EXPECT_FALSE(x.commutesWith(y));
    EXPECT_FALSE(y.commutesWith(z));
    EXPECT_TRUE(x.commutesWith(x));

    // Two anticommuting factors make the whole strings commute.
    EXPECT_TRUE(PauliString::fromString("XX").commutesWith(
        PauliString::fromString("ZZ")));
    EXPECT_FALSE(PauliString::fromString("XI").commutesWith(
        PauliString::fromString("ZI")));
}

TEST(PauliString, CommutationMatchesProductOrder)
{
    // P and Q commute iff PQ == QP (including phase).
    qla::Rng rng(17);
    for (int trial = 0; trial < 200; ++trial) {
        PauliString p(6), q(6);
        for (std::size_t i = 0; i < 6; ++i) {
            p.set(i, static_cast<Pauli>(rng.uniformInt(4)));
            q.set(i, static_cast<Pauli>(rng.uniformInt(4)));
        }
        const auto pq = p * q;
        const auto qp = q * p;
        EXPECT_EQ(p.commutesWith(q), pq == qp);
    }
}

TEST(PauliProductPhaseWord, MatchesScalarDefinition)
{
    // X*Y = iZ contributes +1 on the set bit.
    EXPECT_EQ(pauliProductPhaseWord(1, 0, 1, 1), 1);
    // X*Z = -iY contributes -1.
    EXPECT_EQ(pauliProductPhaseWord(1, 0, 0, 1), -1);
    // Parallel bits accumulate.
    EXPECT_EQ(pauliProductPhaseWord(0b11, 0b00, 0b11, 0b11), 2);
}
