/**
 * @file
 * Row-level recorders for the Figure-5 tile schedule.
 *
 * The verified-preparation segment (encode a row, encode its
 * verification row, interact and read out) is recorded in two places:
 * once per tile site by BatchedLogicalQubitExperiment, and once in
 * relocated form (rows at fixed scratch offsets) by the lane-compaction
 * retry pool. Both must emit the exact same operation sequence -- a
 * compacted lane's noise draws replay against the relocated trace and
 * must consume its rng stream exactly as the in-place trace would -- so
 * the recording logic lives here, parameterized only by the two row
 * base indices.
 */

#ifndef QLA_ARQ_TILE_SCHEDULE_H
#define QLA_ARQ_TILE_SCHEDULE_H

#include <cstddef>

#include "arq/frame_trace.h"
#include "arq/monte_carlo.h"
#include "ecc/css_code.h"

namespace qla::arq {

/**
 * Records the row-level segments of the tile schedule; rows are
 * contiguous runs of blockLength() qubits starting at a base index.
 */
class TileRowRecorder
{
  public:
    TileRowRecorder(const ecc::CssCode &code, const NoiseParameters &noise,
                    const LayoutDistances &layout)
        : code_(code), noise_(noise), layout_(layout)
    {
    }

    /** Depolarizing probability of a cells/turns shuttle (with split). */
    double moveProbability(Cells cells, int turns) const
    {
        const double cell_equivalents = static_cast<double>(cells)
            + noise_.splitCellEquivalent
            + noise_.turnCellEquivalent * turns;
        return noise_.movementErrorPerCell * cell_equivalents;
    }

    /** Inter-block shuttle probability: movement noise plus the
     *  residual EPR infidelity of the interconnect channel it rides
     *  (PR 7; same arithmetic as the scalar moveIonInterBlock). */
    double interBlockMoveProbability() const
    {
        return moveProbability(layout_.interBlockCells,
                               layout_.interBlockTurns)
            + noise_.eprResidualError;
    }

    /** Noisy |0>_L (or |+>_L) encoder into the row at @p q0. */
    void encodeRow(FrameTraceBuilder &tb, std::size_t q0, bool plus) const;

    /**
     * Verification round of the row at @p q0 against the (already
     * encoded) verification row at @p verify_q0: copy the dangerous
     * error type, read the verification row out.
     */
    void verifyRound(FrameTraceBuilder &tb, std::size_t q0,
                     std::size_t verify_q0, bool plus) const;

    /**
     * One verified-preparation attempt, fused into a single segment:
     * encode the row, encode the verification row, verification round
     * (the body of the prepVerified retry loop).
     */
    void prepRound(FrameTraceBuilder &tb, std::size_t q0,
                   std::size_t verify_q0, bool plus) const;

    /**
     * The level-2 verification segment of one already-prepared row:
     * encode the verification row at @p verify_q0, then the
     * verification round against the row at @p q0.
     */
    void verifyPair(FrameTraceBuilder &tb, std::size_t q0,
                    std::size_t verify_q0, bool plus) const;

    /**
     * One syndrome-extraction round: transversal CNOT between the data
     * row at @p data_q0 and the (already prepared) ancilla row at
     * @p anc_q0 with the ancilla ions shuttling the inter-block
     * distance, followed by the ancilla readout. X-type detection when
     * @p detect_x.
     */
    void extractRound(FrameTraceBuilder &tb, std::size_t data_q0,
                      std::size_t anc_q0, bool detect_x) const;

    /**
     * The level-2 encoding network over one conglomeration's data rows:
     * the zero-encoder schedule applied transversally across rows, row
     * of group g based at @p q0 + g * @p group_stride. (@p group_stride
     * lets the same recording serve the tile layout and the segment
     * pool's contiguous scratch rows.)
     */
    void l2Network(FrameTraceBuilder &tb, std::size_t q0,
                   std::size_t group_stride, bool plus) const;

  private:
    const ecc::CssCode &code_;
    const NoiseParameters &noise_;
    const LayoutDistances &layout_;
};

} // namespace qla::arq

#endif // QLA_ARQ_TILE_SCHEDULE_H
