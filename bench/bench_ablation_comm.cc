/**
 * @file
 * Experiment E10 -- communication ablation (Sections 1 and 4.2): the
 * limitations of simplistic approaches. Compares, over growing
 * distances:
 *  (a) direct ballistic transport (latency fine, error accumulates),
 *  (b) "simplistic" teleportation with a single unpurified end-to-end
 *      EPR pair (error saturates toward a useless mixed pair), and
 *  (c) the QLA repeater interconnect (bounded error, modest latency).
 */

#include <cstdio>

#include "common/tech_params.h"
#include "teleport/connection_model.h"

using namespace qla;
using namespace qla::teleport;

int
main()
{
    const auto tech = TechnologyParameters::expected();
    const RepeaterConfig config;
    const RepeaterChain chain(config);

    std::printf("== E10: ablation -- ballistic vs simplistic teleport "
                "vs QLA interconnect ==\n\n");
    std::printf("%10s | %-26s | %-18s | %-30s\n", "D (cells)",
                "ballistic (err / time us)", "single-EPR infid.",
                "QLA repeater (err / time s / d)");
    for (Cells d : {100, 1000, 6000, 30000, 100000}) {
        const double ball_err = ballisticErrorProbability(tech, d);
        const Seconds ball_time = ballisticLatency(tech, d);
        const double naive = simplisticTeleportInfidelity(config, d);
        std::printf("%10lld | %10.2e / %-10.1f | %-18.3f | ",
                    static_cast<long long>(d), ball_err,
                    ball_time * 1e6, naive);
        // The communication scheduler picks the optimal island
        // separation for each distance (Section 4.2).
        const auto best = bestSeparation(chain, figure9Separations(), d);
        if (best) {
            const auto plan = chain.plan(d, *best);
            std::printf("%10.2e / %-8.4f / d=%lld\n",
                        1.0 - plan.finalFidelity, plan.connectionTime,
                        static_cast<long long>(*best));
        } else {
            std::printf("%-10s\n", "infeasible");
        }
    }

    std::printf("\nnotes:\n");
    std::printf(" - ballistic error uses the *expected* movement rate "
                "(1e-6/cell); at the interconnect design point the QLA "
                "must also tolerate early-technology EPR transport "
                "(%.0e/cell), where 30000 ballistic cells are "
                "hopeless.\n",
                config.perCellError);
    std::printf(" - the single-EPR scheme needs purification whose "
                "resources grow exponentially with distance (Section "
                "4.2); the repeater chain caps the final error at %.2f "
                "regardless of D.\n",
                config.targetInfidelity);
    return 0;
}
