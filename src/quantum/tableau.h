/**
 * @file
 * Aaronson-Gottesman stabilizer tableau simulator (CHP), word-parallel.
 *
 * Simulates Clifford circuits (H, S, CNOT, Paulis, CZ, SWAP) plus
 * Z/X-basis and arbitrary-Pauli measurements in polynomial time. This is
 * the engine the paper's contribution 3 describes: "ARQ avoids exponential
 * simulation costs by simulating only a subset of the possible quantum
 * gates ... using a mathematical stabilizer formalism".
 *
 * Representation: 2n+1 rows of (X|Z|r) bits. Rows [0,n) are destabilizers,
 * rows [n,2n) stabilizers, row 2n is scratch for deterministic
 * measurements, exactly following Aaronson & Gottesman (2004).
 *
 * Storage is column-major: for each qubit column the X and Z bits of all
 * 2n+1 rows are packed into 64-bit words (one "bit-plane" per column),
 * and the phase bits r are packed the same way. A gate on qubit q then
 * touches only the O(n/64) words of q's planes with bitwise ops -- all
 * rows in parallel -- instead of one scalar bit per row, and the
 * measurement rowsum multiplies the pivot row into every anticommuting
 * row at once with the 2-bit-counter phase trick of Aaronson-Gottesman
 * Section III.
 */

#ifndef QLA_QUANTUM_TABLEAU_H
#define QLA_QUANTUM_TABLEAU_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "quantum/backend.h"
#include "quantum/pauli.h"

namespace qla::quantum {

/**
 * Stabilizer state of n qubits, initialized to |0...0>.
 */
class StabilizerTableau final : public SimulationBackend
{
  public:
    explicit StabilizerTableau(std::size_t num_qubits);

    const char *backendName() const override { return "stabilizer"; }
    std::size_t numQubits() const override { return n_; }
    std::unique_ptr<SimulationBackend> snapshot() const override;

    /** Reset the whole register to |0...0>. */
    void reset() override;

    //
    // Clifford gates.
    //

    void h(std::size_t q) override;
    void s(std::size_t q) override;   ///< Phase gate diag(1, i).
    void sdg(std::size_t q) override; ///< Inverse phase gate.
    void x(std::size_t q) override;
    void y(std::size_t q) override;
    void z(std::size_t q) override;
    void cnot(std::size_t control, std::size_t target) override;
    void cz(std::size_t a, std::size_t b) override;
    void swap(std::size_t a, std::size_t b) override;

    /** Apply a signed Pauli operator (its sign is a global phase). */
    void applyPauli(const PauliString &p);

    //
    // Measurement.
    //

    /**
     * Measure qubit @p q in the Z basis.
     * @return outcome bit (0 -> |0>, 1 -> |1>).
     */
    bool measureZ(std::size_t q, Rng &rng) override;

    /** Measure qubit @p q in the X basis (H-conjugated Z measurement). */
    bool measureX(std::size_t q, Rng &rng) override;

    /**
     * Measure a Hermitian Pauli observable.
     * @return outcome m: the post-measurement state satisfies
     *         (-1)^m P |psi> = |psi>.
     */
    bool measurePauli(const PauliString &p, Rng &rng);

    /**
     * Eigenvalue of @p p when the state is an eigenstate: 0 for +1,
     * 1 for -1; std::nullopt when the measurement would be random.
     * Does not modify the state.
     */
    std::optional<bool> deterministicValue(const PauliString &p) const;

    /** True iff measuring @p q in Z would give a random outcome. */
    bool isZMeasurementRandom(std::size_t q) const;

    /** Reset qubit @p q to |0> (measure, flip if needed). */
    void resetToZero(std::size_t q, Rng &rng) override;

    /** Stabilizer generator row i (i in [0, n)) as a PauliString. */
    PauliString stabilizer(std::size_t i) const;

    /** Destabilizer generator row i (i in [0, n)). */
    PauliString destabilizer(std::size_t i) const;

    /**
     * Canonical (row-reduced) stabilizer generators; two tableaus describe
     * the same state iff their canonical generator lists are equal.
     */
    std::vector<std::string> canonicalStabilizers() const;

    /** Internal consistency check (commutation structure); for tests. */
    bool checkInvariants() const;

  private:
    //
    // Column bit-planes: plane(col)[row / 64] bit (row % 64) is the
    // (row, col) tableau entry.
    //

    std::uint64_t *colX(std::size_t col) { return xs_.data() + col * wpc_; }
    std::uint64_t *colZ(std::size_t col) { return zs_.data() + col * wpc_; }
    const std::uint64_t *colX(std::size_t col) const
    {
        return xs_.data() + col * wpc_;
    }
    const std::uint64_t *colZ(std::size_t col) const
    {
        return zs_.data() + col * wpc_;
    }

    bool xBit(std::size_t row, std::size_t col) const;
    bool zBit(std::size_t row, std::size_t col) const;
    void setXBit(std::size_t row, std::size_t col, bool v);
    void setZBit(std::size_t row, std::size_t col, bool v);
    bool rBit(std::size_t row) const;
    void setRBit(std::size_t row, bool v);

    /**
     * Sign bit of the ordered product of the stabilizer rows selected by
     * the @p sel bit-plane (bits must lie in rows [n, 2n)), computed
     * transposed: per column, a word-parallel prefix-XOR reconstructs
     * every partial product's Pauli at once and popcount parity
     * accumulates the i-power contributions -- O(n^2/64) instead of the
     * per-row scalar rowsums it replaces. When @p expect_x / @p expect_z
     * are given (packed per-qubit words), asserts that the product's
     * Pauli content matches them.
     */
    bool selectedRowProductSign(const std::uint64_t *sel,
                                const std::uint64_t *expect_x,
                                const std::uint64_t *expect_z) const;

    /** dst = src << shift across the word boundary of a row plane. */
    void shiftPlaneUp(const std::uint64_t *src, std::uint64_t *dst,
                      std::size_t shift) const;

    /**
     * Broadcast rowsum: multiply row @p src into every row selected by
     * the @p mask bit-plane (wpc_ words over rows) simultaneously, with
     * the per-row phase tracked in a pair of counter bit-planes. The
     * src row's own bit must be clear in @p mask.
     */
    void multiplyRowInto(std::size_t src, const std::uint64_t *mask);

    /**
     * Bit-plane over rows: bit r set iff row r anticommutes with @p p.
     * Rows past 2n hold garbage.
     */
    void anticommuteMask(const PauliString &p, std::uint64_t *out) const;

    /** First set bit of @p plane in row range [lo, hi), or hi if none. */
    std::size_t firstSetRow(const std::uint64_t *plane, std::size_t lo,
                            std::size_t hi) const;

    /** Word w of the mask selecting rows in [lo, hi). */
    std::uint64_t rangeWord(std::size_t w, std::size_t lo,
                            std::size_t hi) const;

    void zeroRow(std::size_t row);
    void copyRow(std::size_t dst, std::size_t src);
    void swapRows(std::size_t a, std::size_t b);

    PauliString rowToPauli(std::size_t row) const;

    /** Overwrite row @p row's X/Z bits with @p p (phase untouched). */
    void setRowXZ(std::size_t row, const PauliString &p);

    std::size_t n_;
    std::size_t wpc_; // words per column plane (covers 2n+1 rows)
    std::vector<std::uint64_t> xs_;
    std::vector<std::uint64_t> zs_;
    std::vector<std::uint64_t> r_;

    // Scratch planes for measurement/canonicalization (not part of the
    // logical state; mutable so const queries can use them).
    mutable std::vector<std::uint64_t> scratch_mask_;
    mutable std::vector<std::uint64_t> scratch_cnt1_;
    mutable std::vector<std::uint64_t> scratch_cnt2_;
};

} // namespace qla::quantum

#endif // QLA_QUANTUM_TABLEAU_H
