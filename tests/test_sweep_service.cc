/**
 * @file
 * Sweep-service tests: deterministic partitioning, checkpoint
 * bit-exactness and corruption rejection, kill-and-resume byte
 * identity at adversarial boundaries, shard/merge equivalence,
 * record/replay cache identity, and the service queue semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arq/monte_carlo.h"
#include "common/rng.h"
#include "serve/checkpoint.h"
#include "serve/engine_cache.h"
#include "serve/job_spec.h"
#include "serve/partition.h"
#include "serve/service.h"
#include "serve/sweep_runner.h"

using namespace qla;
using namespace qla::serve;

namespace {

/** Small-but-nontrivial threshold job: 2 points x 2 levels x 4 chunks
 *  of 64 shots = 16 chunks, so kill boundaries can land mid-task,
 *  on a task (level) boundary, and on a point boundary. */
SweepJobSpec
smallThresholdSpec()
{
    SweepJobSpec spec;
    spec.kind = SweepKind::Threshold;
    spec.threshold.physicalErrors = {1.5e-3, 2.5e-3};
    spec.threshold.shots = 256;
    spec.threshold.chunkShots = 64;
    spec.threshold.groupWords = 1;
    spec.threshold.seed = 20050938;
    return spec;
}

/** Tiny co-simulation job: 1 workload x 2 bandwidths x 1 seed. */
SweepJobSpec
smallCoSimSpec()
{
    SweepJobSpec spec;
    spec.kind = SweepKind::CoSim;
    WorkloadSpec workload;
    workload.app = WorkloadSpec::App::Qcla;
    workload.size = 8;
    spec.cosim.workloads = {workload};
    spec.cosim.bandwidths = {1, 2};
    spec.cosim.seeds = {7};
    spec.cosim.randomPlacement = true;
    return spec;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "sweep_service_" + name;
}

std::string
runToCompletion(const SweepJobSpec &spec, int workers,
                const std::string &checkpoint = {})
{
    SweepCaches caches;
    RunnerOptions options;
    options.workers = workers;
    options.checkpointPath = checkpoint;
    const RunOutcome outcome = runSweepJob(spec, options, caches);
    EXPECT_TRUE(outcome.error.empty()) << outcome.error;
    EXPECT_TRUE(outcome.complete);
    EXPECT_FALSE(outcome.output.empty());
    return outcome.output;
}

} // namespace

TEST(SweepJobSpec, RoundTripsThroughCanonicalText)
{
    for (const SweepJobSpec &spec :
         {smallThresholdSpec(), smallCoSimSpec()}) {
        SweepJobSpec reparsed;
        std::string error;
        ASSERT_TRUE(
            SweepJobSpec::parse(spec.canonicalText(), reparsed, error))
            << error;
        EXPECT_EQ(spec.configHash(), reparsed.configHash());
        EXPECT_EQ(spec.canonicalText(), reparsed.canonicalText());
    }
}

TEST(SweepJobSpec, RejectsMalformedRequests)
{
    SweepJobSpec spec;
    std::string error;
    EXPECT_FALSE(SweepJobSpec::parse("", spec, error));
    EXPECT_FALSE(SweepJobSpec::parse("kind threshold\n", spec, error));
    EXPECT_FALSE(SweepJobSpec::parse("kind cosim\n", spec, error));
    EXPECT_FALSE(SweepJobSpec::parse(
        "kind threshold\nerrors 1e-3\nshots 4000x\n", spec, error));
    EXPECT_FALSE(SweepJobSpec::parse(
        "kind threshold\nerrors 1e-3\ngroup-words 33\n", spec, error));
    EXPECT_FALSE(SweepJobSpec::parse(
        "kind threshold\nerrors 1e-3\nbogus-key 1\n", spec, error));
    EXPECT_FALSE(SweepJobSpec::parse(
        "kind cosim\nworkload qcla 0\n", spec, error));
    // Comments and blank lines are fine.
    EXPECT_TRUE(SweepJobSpec::parse(
        "# request\n\nkind threshold\nerrors 1e-3 2e-3\n", spec, error))
        << error;
    EXPECT_EQ(spec.threshold.physicalErrors.size(), 2u);
}

TEST(SweepPartition, IsDeterministicAndMirrorsThresholdSweepSeeds)
{
    const SweepJobSpec spec = smallThresholdSpec();
    const JobPartition a = partitionJob(spec);
    const JobPartition b = partitionJob(spec);
    ASSERT_EQ(a.tasks.size(), 4u);
    ASSERT_EQ(a.chunks.size(), 16u);
    ASSERT_EQ(a.chunks.size(), b.chunks.size());

    // Seeds derive exactly as arq::thresholdSweep derives them.
    Rng seeder(spec.threshold.seed);
    for (std::size_t i = 0; i < spec.threshold.physicalErrors.size();
         ++i) {
        EXPECT_EQ(a.tasks[2 * i].seed, seeder.next64());
        EXPECT_EQ(a.tasks[2 * i].level, 1);
        EXPECT_EQ(a.tasks[2 * i + 1].seed, seeder.next64());
        EXPECT_EQ(a.tasks[2 * i + 1].level, 2);
    }

    // Chunks tile every task's shot range exactly, in index order.
    std::vector<std::uint64_t> covered(a.tasks.size(), 0);
    for (std::size_t j = 0; j < a.chunks.size(); ++j) {
        const SweepChunk &chunk = a.chunks[j];
        EXPECT_EQ(chunk.index, j);
        EXPECT_EQ(chunk.firstShot, covered[chunk.task]);
        covered[chunk.task] += chunk.shotCount;
    }
    for (const std::uint64_t shots : covered)
        EXPECT_EQ(shots, spec.threshold.shots);
}

TEST(SweepPartition, ShardsOwnEveryChunkExactlyOnce)
{
    const JobPartition partition = partitionJob(smallThresholdSpec());
    for (const int shard_count : {1, 2, 3, 5}) {
        for (const SweepChunk &chunk : partition.chunks) {
            int owners = 0;
            for (int s = 0; s < shard_count; ++s)
                owners += chunkInShard(chunk.index, s, shard_count);
            EXPECT_EQ(owners, 1);
        }
    }
}

TEST(SweepCheckpoint, RoundTripsBitExactly)
{
    CheckpointData data;
    data.configHash = 0xdeadbeefcafef00dULL;
    data.kind = SweepKind::Threshold;
    data.totalChunks = 7;
    for (const std::size_t index : {0u, 3u, 6u}) {
        ThresholdChunkPartial partial;
        partial.chunk = index;
        partial.failures.addBulk(index + 1, 64);
        partial.stats.logicalFailure.addBulk(index + 1, 64);
        partial.stats.nontrivialSyndrome.addBulk(index * 5, 64);
        // Awkward doubles: subnormal, non-terminating binary fraction.
        partial.stats.prepAttempts.add(0.1 + 1e-17 * index);
        partial.stats.prepAttempts.add(5e-324);
        partial.stats.prepAttempts.add(1e300);
        data.threshold.push_back(partial);
    }

    const std::string text = encodeCheckpoint(data);
    CheckpointData loaded;
    std::string error;
    ASSERT_TRUE(decodeCheckpoint(text, loaded, error)) << error;
    EXPECT_EQ(loaded.configHash, data.configHash);
    EXPECT_EQ(loaded.totalChunks, data.totalChunks);
    ASSERT_EQ(loaded.threshold.size(), data.threshold.size());
    for (std::size_t i = 0; i < data.threshold.size(); ++i) {
        const auto want = data.threshold[i].stats.prepAttempts.raw();
        const auto got = loaded.threshold[i].stats.prepAttempts.raw();
        EXPECT_EQ(want.count, got.count);
        // Bit-level equality, not approximate: hexfloat round trip.
        EXPECT_EQ(std::memcmp(&want, &got, sizeof(want)), 0);
        EXPECT_EQ(data.threshold[i].failures.successes(),
                  loaded.threshold[i].failures.successes());
    }
    // Re-encoding the loaded data reproduces the file byte for byte.
    EXPECT_EQ(encodeCheckpoint(loaded), text);
}

TEST(SweepCheckpoint, RejectsCorruptionAndTruncation)
{
    CheckpointData data;
    data.configHash = 42;
    data.kind = SweepKind::Threshold;
    data.totalChunks = 4;
    ThresholdChunkPartial partial;
    partial.chunk = 2;
    partial.failures.addBulk(3, 64);
    partial.stats.prepAttempts.add(1.5);
    data.threshold.push_back(partial);
    const std::string text = encodeCheckpoint(data);

    CheckpointData loaded;
    std::string error;

    // Truncation: missing end line, and a cut mid-line.
    const std::size_t end_at = text.rfind("end ");
    EXPECT_FALSE(
        decodeCheckpoint(text.substr(0, end_at), loaded, error));
    EXPECT_FALSE(
        decodeCheckpoint(text.substr(0, text.size() / 2), loaded,
                         error));

    // A single flipped payload byte breaks the integrity hash.
    std::string flipped = text;
    flipped[text.find("chunk") + 8] ^= 1;
    EXPECT_FALSE(decodeCheckpoint(flipped, loaded, error));
    EXPECT_NE(error.find("corrupt"), std::string::npos) << error;

    // Wrong magic and unsupported version.
    EXPECT_FALSE(decodeCheckpoint("not a checkpoint\n" + text, loaded,
                                  error));
    std::string v2 = text;
    v2.replace(v2.find("v1"), 2, "v2");
    EXPECT_FALSE(decodeCheckpoint(v2, loaded, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;

    // Duplicate and out-of-range chunk indices (hash recomputed so
    // only the index check can reject).
    CheckpointData dup = data;
    dup.threshold.push_back(partial);
    EXPECT_FALSE(decodeCheckpoint(encodeCheckpoint(dup), loaded, error));
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
    CheckpointData oob = data;
    oob.threshold[0].chunk = 9;
    EXPECT_FALSE(decodeCheckpoint(encodeCheckpoint(oob), loaded, error));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;

    // Trailing garbage after the end line.
    EXPECT_FALSE(decodeCheckpoint(text + "extra\n", loaded, error));
}

TEST(SweepRunner, ThresholdOutputMatchesInProcessSweep)
{
    const SweepJobSpec spec = smallThresholdSpec();
    const std::string served = runToCompletion(spec, 2);

    // The reference: arq::thresholdSweep with the same window, shots
    // and seed (engine defaults -- the determinism contract makes
    // group width and chunking result-neutral).
    const auto points
        = arq::thresholdSweep(spec.threshold.physicalErrors,
                              spec.threshold.shots,
                              spec.threshold.seed);
    std::string expected;
    char buf[256];
    for (const auto &point : points) {
        std::snprintf(buf, sizeof(buf),
                      "p=%.17g L1=%.17g +- %.17g L2=%.17g +- %.17g\n",
                      point.physicalError, point.level1Failure,
                      point.level1Error, point.level2Failure,
                      point.level2Error);
        expected += buf;
    }
    std::snprintf(buf, sizeof(buf), "threshold=%.17g\n",
                  arq::estimateThreshold(points));
    expected += buf;
    EXPECT_EQ(served, expected);
}

TEST(SweepRunner, KillAndResumeIsByteIdenticalAtEveryBoundary)
{
    const SweepJobSpec spec = smallThresholdSpec();
    const std::string full = runToCompletion(spec, 1);
    const std::size_t total = partitionJob(spec).chunks.size();
    ASSERT_EQ(total, 16u);

    // Adversarial kill boundaries: first chunk, mid-point (inside one
    // task's shot range), mid-level (on the L1/L2 task seam), point
    // boundary, all-but-one.
    for (const std::size_t kill_after : {1u, 3u, 4u, 8u, 15u}) {
        for (const int workers : {1, 2}) {
            const std::string checkpoint = tempPath(
                "resume_" + std::to_string(kill_after) + "_"
                + std::to_string(workers));
            std::remove(checkpoint.c_str());

            SweepCaches caches;
            RunnerOptions options;
            options.workers = workers;
            options.checkpointPath = checkpoint;
            options.killAfterChunks = kill_after;
            const RunOutcome killed
                = runSweepJob(spec, options, caches);
            ASSERT_TRUE(killed.error.empty()) << killed.error;
            EXPECT_FALSE(killed.complete);
            EXPECT_GE(killed.chunksComputed, kill_after);

            options.killAfterChunks = 0;
            SweepCaches fresh;
            const RunOutcome resumed
                = runSweepJob(spec, options, fresh);
            ASSERT_TRUE(resumed.error.empty()) << resumed.error;
            ASSERT_TRUE(resumed.complete);
            EXPECT_EQ(resumed.chunksFromCheckpoint,
                      killed.chunksComputed);
            EXPECT_EQ(resumed.output, full)
                << "kill_after=" << kill_after
                << " workers=" << workers;
            std::remove(checkpoint.c_str());
        }
    }
}

TEST(SweepRunner, ResumesFromZeroCompletedAndFullyCompletedCheckpoints)
{
    const SweepJobSpec spec = smallThresholdSpec();
    const std::string full = runToCompletion(spec, 1);
    const std::string checkpoint = tempPath("edge_resume");

    // Zero-completed: a valid checkpoint with no chunks (the process
    // died before finishing any work).
    CheckpointData empty;
    empty.configHash = spec.configHash();
    empty.kind = spec.kind;
    empty.totalChunks = partitionJob(spec).chunks.size();
    std::string error;
    ASSERT_TRUE(saveCheckpointFile(checkpoint, empty, error)) << error;
    SweepCaches caches;
    RunnerOptions options;
    options.checkpointPath = checkpoint;
    RunOutcome outcome = runSweepJob(spec, options, caches);
    ASSERT_TRUE(outcome.complete) << outcome.error;
    EXPECT_EQ(outcome.chunksFromCheckpoint, 0u);
    EXPECT_EQ(outcome.output, full);

    // All-completed: resuming the finished checkpoint computes nothing
    // and still renders the identical output.
    outcome = runSweepJob(spec, options, caches);
    ASSERT_TRUE(outcome.complete) << outcome.error;
    EXPECT_EQ(outcome.chunksComputed, 0u);
    EXPECT_EQ(outcome.chunksFromCheckpoint, empty.totalChunks);
    EXPECT_EQ(outcome.output, full);
    std::remove(checkpoint.c_str());
}

TEST(SweepRunner, RejectsCheckpointFromDifferentJob)
{
    const SweepJobSpec spec = smallThresholdSpec();
    SweepJobSpec other = spec;
    other.threshold.seed += 1;
    const std::string checkpoint = tempPath("wrong_job");

    CheckpointData data;
    data.configHash = other.configHash();
    data.kind = other.kind;
    data.totalChunks = partitionJob(other).chunks.size();
    std::string error;
    ASSERT_TRUE(saveCheckpointFile(checkpoint, data, error)) << error;

    SweepCaches caches;
    RunnerOptions options;
    options.checkpointPath = checkpoint;
    const RunOutcome outcome = runSweepJob(spec, options, caches);
    EXPECT_FALSE(outcome.complete);
    EXPECT_NE(outcome.error.find("config hash"), std::string::npos)
        << outcome.error;
    std::remove(checkpoint.c_str());
}

TEST(SweepRunner, ShardedRunMergesToUnshardedOutput)
{
    const SweepJobSpec spec = smallThresholdSpec();
    const std::string full = runToCompletion(spec, 2);

    const int shard_count = 3;
    std::vector<CheckpointData> shards;
    for (int s = 0; s < shard_count; ++s) {
        const std::string checkpoint
            = tempPath("shard_" + std::to_string(s));
        std::remove(checkpoint.c_str());
        SweepCaches caches;
        RunnerOptions options;
        options.workers = 2;
        options.shardIndex = s;
        options.shardCount = shard_count;
        options.checkpointPath = checkpoint;
        const RunOutcome outcome = runSweepJob(spec, options, caches);
        ASSERT_TRUE(outcome.complete) << outcome.error;
        EXPECT_TRUE(outcome.output.empty());
        CheckpointData data;
        std::string error;
        ASSERT_TRUE(loadCheckpointFile(checkpoint, data, error))
            << error;
        shards.push_back(std::move(data));
        std::remove(checkpoint.c_str());
    }

    std::string merged, error;
    ASSERT_TRUE(mergeSweepCheckpoints(spec, shards, merged, error))
        << error;
    EXPECT_EQ(merged, full);

    // Merge rejects double coverage and holes.
    std::vector<CheckpointData> bad = {shards[0], shards[0], shards[1]};
    EXPECT_FALSE(mergeSweepCheckpoints(spec, bad, merged, error));
    bad = {shards[0], shards[1]};
    EXPECT_FALSE(mergeSweepCheckpoints(spec, bad, merged, error));
}

TEST(SweepRunner, WarmCacheReplayIsByteIdentical)
{
    const SweepJobSpec spec = smallThresholdSpec();
    SweepCaches caches;
    RunnerOptions options;
    options.workers = 1;

    const RunOutcome cold = runSweepJob(spec, options, caches);
    ASSERT_TRUE(cold.complete) << cold.error;
    const CacheCounters after_cold = caches.counters();
    EXPECT_EQ(after_cold.traceRecordings, 2u); // One per noise point.
    EXPECT_GT(after_cold.traceReplays, 0u);

    caches.resetCounters();
    const RunOutcome warm = runSweepJob(spec, options, caches);
    ASSERT_TRUE(warm.complete) << warm.error;
    const CacheCounters after_warm = caches.counters();
    EXPECT_EQ(after_warm.traceRecordings, 0u); // Pure replay.
    EXPECT_GT(after_warm.traceReplays, 0u);
    EXPECT_EQ(warm.output, cold.output);
}

TEST(SweepRunner, CoSimResumeAndWorkloadCacheReplay)
{
    const SweepJobSpec spec = smallCoSimSpec();
    SweepCaches caches;
    RunnerOptions options;
    options.workers = 1;
    const RunOutcome full = runSweepJob(spec, options, caches);
    ASSERT_TRUE(full.complete) << full.error;
    EXPECT_EQ(caches.counters().workloadLowerings, 1u);

    // Kill after the first point, then resume.
    const std::string checkpoint = tempPath("cosim_resume");
    std::remove(checkpoint.c_str());
    options.checkpointPath = checkpoint;
    options.killAfterChunks = 1;
    SweepCaches cold;
    const RunOutcome killed = runSweepJob(spec, options, cold);
    ASSERT_TRUE(killed.error.empty()) << killed.error;
    EXPECT_FALSE(killed.complete);

    options.killAfterChunks = 0;
    const RunOutcome resumed = runSweepJob(spec, options, cold);
    ASSERT_TRUE(resumed.complete) << resumed.error;
    EXPECT_EQ(resumed.output, full.output);
    // The workload lowered once across kill + resume in this cache.
    EXPECT_EQ(cold.counters().workloadLowerings, 1u);
    EXPECT_GT(cold.counters().workloadReplays, 0u);
    std::remove(checkpoint.c_str());
}

TEST(SweepService, ServesFifoWithResultCacheReplay)
{
    SweepService service;
    SweepRequest first;
    first.name = "threshold";
    first.spec = smallThresholdSpec();
    SweepRequest second;
    second.name = "cosim";
    second.spec = smallCoSimSpec();
    SweepRequest repeat = first;
    repeat.name = "threshold-again";

    service.submit(first);
    service.submit(second);
    service.submit(repeat);
    EXPECT_EQ(service.pendingRequests(), 3u);

    const std::vector<SweepResponse> responses = service.drain();
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[0].name, "threshold");
    EXPECT_EQ(responses[1].name, "cosim");
    EXPECT_EQ(responses[2].name, "threshold-again");
    for (const SweepResponse &response : responses) {
        EXPECT_TRUE(response.complete) << response.error;
        EXPECT_FALSE(response.output.empty());
    }
    EXPECT_FALSE(responses[0].fromResultCache);
    EXPECT_TRUE(responses[2].fromResultCache);
    EXPECT_EQ(responses[2].output, responses[0].output);
    EXPECT_EQ(responses[2].configHash, responses[0].configHash);
    EXPECT_EQ(service.resultCacheSize(), 2u);
}

TEST(SweepService, StreamsIncrementalWilsonIntervals)
{
    SweepService service;
    SweepRequest request;
    request.name = "progress";
    request.spec = smallThresholdSpec();
    request.options.workers = 1;
    std::vector<std::string> lines;
    request.options.progress = [&lines](const std::string &line) {
        lines.push_back(line);
    };
    service.submit(std::move(request));
    SweepResponse response;
    ASSERT_TRUE(service.processNext(response));
    ASSERT_TRUE(response.complete) << response.error;

    const std::size_t total = partitionJob(smallThresholdSpec())
                                  .chunks.size();
    ASSERT_EQ(lines.size(), total);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        char want[64];
        std::snprintf(want, sizeof(want), "progress %zu/%zu ", i + 1,
                      total);
        EXPECT_EQ(lines[i].rfind(want, 0), 0u) << lines[i];
        EXPECT_NE(lines[i].find("+-"), std::string::npos) << lines[i];
    }
}
