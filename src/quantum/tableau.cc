#include "quantum/tableau.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace qla::quantum {

StabilizerTableau::StabilizerTableau(std::size_t num_qubits)
    : n_(num_qubits), wpr_((num_qubits + 63) / 64),
      xs_((2 * num_qubits + 1) * wpr_, 0),
      zs_((2 * num_qubits + 1) * wpr_, 0), r_(2 * num_qubits + 1, 0)
{
    qla_assert(num_qubits > 0, "empty register");
    reset();
}

void
StabilizerTableau::reset()
{
    std::fill(xs_.begin(), xs_.end(), 0);
    std::fill(zs_.begin(), zs_.end(), 0);
    std::fill(r_.begin(), r_.end(), 0);
    for (std::size_t i = 0; i < n_; ++i) {
        setXBit(i, i, true);        // destabilizer i = X_i
        setZBit(n_ + i, i, true);   // stabilizer i = Z_i
    }
}

bool
StabilizerTableau::xBit(std::size_t row, std::size_t col) const
{
    return (xs_[row * wpr_ + col / 64] >> (col % 64)) & 1ULL;
}

bool
StabilizerTableau::zBit(std::size_t row, std::size_t col) const
{
    return (zs_[row * wpr_ + col / 64] >> (col % 64)) & 1ULL;
}

void
StabilizerTableau::setXBit(std::size_t row, std::size_t col, bool v)
{
    const std::uint64_t mask = 1ULL << (col % 64);
    if (v)
        xs_[row * wpr_ + col / 64] |= mask;
    else
        xs_[row * wpr_ + col / 64] &= ~mask;
}

void
StabilizerTableau::setZBit(std::size_t row, std::size_t col, bool v)
{
    const std::uint64_t mask = 1ULL << (col % 64);
    if (v)
        zs_[row * wpr_ + col / 64] |= mask;
    else
        zs_[row * wpr_ + col / 64] &= ~mask;
}

void
StabilizerTableau::h(std::size_t q)
{
    qla_assert(q < n_);
    for (std::size_t row = 0; row < 2 * n_ + 1; ++row) {
        const bool xv = xBit(row, q);
        const bool zv = zBit(row, q);
        if (xv && zv)
            r_[row] ^= 1;
        setXBit(row, q, zv);
        setZBit(row, q, xv);
    }
}

void
StabilizerTableau::s(std::size_t q)
{
    qla_assert(q < n_);
    for (std::size_t row = 0; row < 2 * n_ + 1; ++row) {
        const bool xv = xBit(row, q);
        const bool zv = zBit(row, q);
        if (xv && zv)
            r_[row] ^= 1;
        setZBit(row, q, zv ^ xv);
    }
}

void
StabilizerTableau::sdg(std::size_t q)
{
    // S^3 = S^dagger up to global phase.
    s(q);
    s(q);
    s(q);
}

void
StabilizerTableau::x(std::size_t q)
{
    qla_assert(q < n_);
    for (std::size_t row = 0; row < 2 * n_ + 1; ++row)
        r_[row] ^= zBit(row, q);
}

void
StabilizerTableau::z(std::size_t q)
{
    qla_assert(q < n_);
    for (std::size_t row = 0; row < 2 * n_ + 1; ++row)
        r_[row] ^= xBit(row, q);
}

void
StabilizerTableau::y(std::size_t q)
{
    qla_assert(q < n_);
    for (std::size_t row = 0; row < 2 * n_ + 1; ++row)
        r_[row] ^= xBit(row, q) ^ zBit(row, q);
}

void
StabilizerTableau::cnot(std::size_t control, std::size_t target)
{
    qla_assert(control < n_ && target < n_ && control != target);
    for (std::size_t row = 0; row < 2 * n_ + 1; ++row) {
        const bool xc = xBit(row, control);
        const bool zc = zBit(row, control);
        const bool xt = xBit(row, target);
        const bool zt = zBit(row, target);
        if (xc && zt && (xt == zc))
            r_[row] ^= 1;
        setXBit(row, target, xt ^ xc);
        setZBit(row, control, zc ^ zt);
    }
}

void
StabilizerTableau::cz(std::size_t a, std::size_t b)
{
    qla_assert(a < n_ && b < n_ && a != b);
    for (std::size_t row = 0; row < 2 * n_ + 1; ++row) {
        const bool xa = xBit(row, a);
        const bool za = zBit(row, a);
        const bool xb = xBit(row, b);
        const bool zb = zBit(row, b);
        if (xa && xb && (za ^ zb))
            r_[row] ^= 1;
        setZBit(row, a, za ^ xb);
        setZBit(row, b, zb ^ xa);
    }
}

void
StabilizerTableau::swap(std::size_t a, std::size_t b)
{
    qla_assert(a < n_ && b < n_ && a != b);
    for (std::size_t row = 0; row < 2 * n_ + 1; ++row) {
        const bool xa = xBit(row, a);
        const bool za = zBit(row, a);
        setXBit(row, a, xBit(row, b));
        setZBit(row, a, zBit(row, b));
        setXBit(row, b, xa);
        setZBit(row, b, za);
    }
}

void
StabilizerTableau::applyPauli(const PauliString &p)
{
    qla_assert(p.numQubits() == n_);
    for (std::size_t q = 0; q < n_; ++q) {
        switch (p.at(q)) {
          case Pauli::I:
            break;
          case Pauli::X:
            x(q);
            break;
          case Pauli::Y:
            y(q);
            break;
          case Pauli::Z:
            z(q);
            break;
        }
    }
}

void
StabilizerTableau::rowsum(std::size_t h, std::size_t i)
{
    // Phase of the product P_i * P_h, accumulated as a power of i.
    int phase = 2 * r_[h] + 2 * r_[i];
    for (std::size_t w = 0; w < wpr_; ++w) {
        phase += pauliProductPhaseWord(xs_[i * wpr_ + w], zs_[i * wpr_ + w],
                                       xs_[h * wpr_ + w],
                                       zs_[h * wpr_ + w]);
        xs_[h * wpr_ + w] ^= xs_[i * wpr_ + w];
        zs_[h * wpr_ + w] ^= zs_[i * wpr_ + w];
    }
    phase = ((phase % 4) + 4) % 4;
    qla_assert(phase == 0 || phase == 2, "rowsum produced i^", phase);
    r_[h] = phase == 2;
}

void
StabilizerTableau::rowsumPauli(std::size_t h, const PauliString &p)
{
    int phase = 2 * r_[h] + p.phaseExponent();
    for (std::size_t w = 0; w < wpr_; ++w) {
        phase += pauliProductPhaseWord(p.xWords()[w], p.zWords()[w],
                                       xs_[h * wpr_ + w],
                                       zs_[h * wpr_ + w]);
        xs_[h * wpr_ + w] ^= p.xWords()[w];
        zs_[h * wpr_ + w] ^= p.zWords()[w];
    }
    phase = ((phase % 4) + 4) % 4;
    qla_assert(phase == 0 || phase == 2, "rowsumPauli produced i^", phase);
    r_[h] = phase == 2;
}

void
StabilizerTableau::zeroRow(std::size_t row)
{
    std::fill_n(xs_.begin() + row * wpr_, wpr_, 0ULL);
    std::fill_n(zs_.begin() + row * wpr_, wpr_, 0ULL);
    r_[row] = 0;
}

void
StabilizerTableau::copyRow(std::size_t dst, std::size_t src)
{
    std::copy_n(xs_.begin() + src * wpr_, wpr_, xs_.begin() + dst * wpr_);
    std::copy_n(zs_.begin() + src * wpr_, wpr_, zs_.begin() + dst * wpr_);
    r_[dst] = r_[src];
}

bool
StabilizerTableau::rowAnticommutes(std::size_t row, const PauliString &p)
    const
{
    int parity = 0;
    for (std::size_t w = 0; w < wpr_; ++w) {
        parity ^= std::popcount((xs_[row * wpr_ + w] & p.zWords()[w])
                                ^ (zs_[row * wpr_ + w] & p.xWords()[w]))
            & 1;
    }
    return parity != 0;
}

PauliString
StabilizerTableau::rowToPauli(std::size_t row) const
{
    PauliString p(n_);
    for (std::size_t w = 0; w < wpr_; ++w) {
        p.x_[w] = xs_[row * wpr_ + w];
        p.z_[w] = zs_[row * wpr_ + w];
    }
    p.setPhaseExponent(r_[row] ? 2 : 0);
    return p;
}

bool
StabilizerTableau::isZMeasurementRandom(std::size_t q) const
{
    for (std::size_t row = n_; row < 2 * n_; ++row)
        if (xBit(row, q))
            return true;
    return false;
}

bool
StabilizerTableau::measureZ(std::size_t q, Rng &rng)
{
    qla_assert(q < n_);

    // Find a stabilizer that anticommutes with Z_q.
    std::size_t p = 2 * n_;
    for (std::size_t row = n_; row < 2 * n_; ++row) {
        if (xBit(row, q)) {
            p = row;
            break;
        }
    }

    if (p < 2 * n_) {
        // Random outcome. Row p - n (the pivot's destabilizer partner,
        // which anticommutes with row p) is skipped: it is overwritten
        // below, and multiplying anticommuting Paulis would leave an
        // imaginary phase.
        for (std::size_t row = 0; row < 2 * n_; ++row)
            if (row != p && row != p - n_ && xBit(row, q))
                rowsum(row, p);
        copyRow(p - n_, p);
        zeroRow(p);
        setZBit(p, q, true);
        const bool outcome = rng.bernoulli(0.5);
        r_[p] = outcome;
        return outcome;
    }

    // Deterministic outcome via the scratch row.
    zeroRow(2 * n_);
    for (std::size_t i = 0; i < n_; ++i)
        if (xBit(i, q))
            rowsum(2 * n_, i + n_);
    return r_[2 * n_];
}

bool
StabilizerTableau::measureX(std::size_t q, Rng &rng)
{
    h(q);
    const bool outcome = measureZ(q, rng);
    h(q);
    return outcome;
}

bool
StabilizerTableau::measurePauli(const PauliString &p, Rng &rng)
{
    qla_assert(p.numQubits() == n_);
    qla_assert(p.phaseExponent() == 0 || p.phaseExponent() == 2,
               "measured observable must be Hermitian");
    const bool s = p.phaseExponent() == 2;

    std::size_t pivot = 2 * n_;
    for (std::size_t row = n_; row < 2 * n_; ++row) {
        if (rowAnticommutes(row, p)) {
            pivot = row;
            break;
        }
    }

    if (pivot < 2 * n_) {
        for (std::size_t row = 0; row < 2 * n_; ++row)
            if (row != pivot && row != pivot - n_
                && rowAnticommutes(row, p))
                rowsum(row, pivot);
        copyRow(pivot - n_, pivot);
        zeroRow(pivot);
        for (std::size_t w = 0; w < wpr_; ++w) {
            xs_[pivot * wpr_ + w] = p.xWords()[w];
            zs_[pivot * wpr_ + w] = p.zWords()[w];
        }
        const bool outcome = rng.bernoulli(0.5);
        r_[pivot] = outcome ^ s;
        return outcome;
    }

    const auto value = deterministicValue(p);
    qla_assert(value.has_value());
    return *value;
}

std::optional<bool>
StabilizerTableau::deterministicValue(const PauliString &p) const
{
    qla_assert(p.numQubits() == n_);
    for (std::size_t row = n_; row < 2 * n_; ++row)
        if (rowAnticommutes(row, p))
            return std::nullopt;

    // The observable is a product of stabilizer generators; accumulate
    // exactly those whose destabilizer partner anticommutes with p.
    auto *self = const_cast<StabilizerTableau *>(this);
    self->zeroRow(2 * n_);
    for (std::size_t i = 0; i < n_; ++i)
        if (rowAnticommutes(i, p))
            self->rowsum(2 * n_, i + n_);

    // Scratch row must now equal +/- p (up to sign); outcome compares the
    // accumulated sign with p's own sign.
    for (std::size_t w = 0; w < wpr_; ++w) {
        qla_assert(xs_[2 * n_ * wpr_ + w] == p.xWords()[w]
                       && zs_[2 * n_ * wpr_ + w] == p.zWords()[w],
                   "observable not in stabilizer group");
    }
    const bool s = p.phaseExponent() == 2;
    return r_[2 * n_] ^ s;
}

void
StabilizerTableau::resetToZero(std::size_t q, Rng &rng)
{
    if (measureZ(q, rng))
        x(q);
}

PauliString
StabilizerTableau::stabilizer(std::size_t i) const
{
    qla_assert(i < n_);
    return rowToPauli(n_ + i);
}

PauliString
StabilizerTableau::destabilizer(std::size_t i) const
{
    qla_assert(i < n_);
    return rowToPauli(i);
}

std::vector<std::string>
StabilizerTableau::canonicalStabilizers() const
{
    // Gauss-reduce the stabilizer rows over GF(2) with X bits taking
    // priority over Z bits, mirroring the canonical form used by CHP-style
    // simulators; signs ride along through rowsum.
    StabilizerTableau copy = *this;
    std::size_t pivot_row = copy.n_;

    auto reduceColumn = [&](auto getBit) {
        for (std::size_t col = 0; col < copy.n_; ++col) {
            std::size_t found = 0;
            bool have = false;
            for (std::size_t row = pivot_row; row < 2 * copy.n_; ++row) {
                if (getBit(copy, row, col)) {
                    found = row;
                    have = true;
                    break;
                }
            }
            if (!have)
                continue;
            if (found != pivot_row) {
                // Swap rows by multiplying: emulate with explicit swap.
                for (std::size_t w = 0; w < copy.wpr_; ++w) {
                    std::swap(copy.xs_[found * copy.wpr_ + w],
                              copy.xs_[pivot_row * copy.wpr_ + w]);
                    std::swap(copy.zs_[found * copy.wpr_ + w],
                              copy.zs_[pivot_row * copy.wpr_ + w]);
                }
                std::swap(copy.r_[found], copy.r_[pivot_row]);
            }
            for (std::size_t row = copy.n_; row < 2 * copy.n_; ++row) {
                if (row != pivot_row && getBit(copy, row, col))
                    copy.rowsum(row, pivot_row);
            }
            ++pivot_row;
            if (pivot_row == 2 * copy.n_)
                return;
        }
    };

    reduceColumn([](const StabilizerTableau &t, std::size_t row,
                    std::size_t col) { return t.xBit(row, col); });
    reduceColumn([](const StabilizerTableau &t, std::size_t row,
                    std::size_t col) {
        return !t.xBit(row, col) && t.zBit(row, col);
    });

    std::vector<std::string> rows;
    rows.reserve(copy.n_);
    for (std::size_t i = 0; i < copy.n_; ++i)
        rows.push_back(copy.rowToPauli(copy.n_ + i).toString());
    std::sort(rows.begin(), rows.end());
    return rows;
}

bool
StabilizerTableau::checkInvariants() const
{
    // Stabilizers must commute pairwise; destabilizer i must anticommute
    // with stabilizer i and commute with all others.
    for (std::size_t i = 0; i < n_; ++i) {
        const PauliString si = stabilizer(i);
        for (std::size_t j = 0; j < n_; ++j) {
            const PauliString sj = stabilizer(j);
            if (!si.commutesWith(sj))
                return false;
            const PauliString dj = destabilizer(j);
            const bool should_commute = (i != j);
            if (si.commutesWith(dj) != should_commute)
                return false;
        }
    }
    return true;
}

} // namespace qla::quantum
