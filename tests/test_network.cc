/**
 * @file
 * Island-mesh and greedy EPR-scheduler tests (Section 5).
 */

#include <gtest/gtest.h>

#include "network/mesh.h"
#include "network/scheduler.h"
#include "network/workload.h"

using namespace qla;
using namespace qla::network;

TEST(IslandMesh, CapacityAccounting)
{
    IslandMesh mesh(4, 4, 2, 10); // 20 pairs per directed link
    EXPECT_EQ(mesh.linkCapacity(), 20u);
    const std::vector<IslandCoord> path{{0, 0}, {1, 0}, {2, 0}};
    EXPECT_EQ(mesh.maxReservable(path), 20u);
    EXPECT_TRUE(mesh.reservePath(path, 15));
    EXPECT_EQ(mesh.maxReservable(path), 5u);
    EXPECT_FALSE(mesh.reservePath(path, 6)); // over capacity
    EXPECT_TRUE(mesh.reservePath(path, 5));
    EXPECT_EQ(mesh.maxReservable(path), 0u);
}

TEST(IslandMesh, DirectedLinksAreIndependent)
{
    IslandMesh mesh(3, 3, 1, 10);
    const std::vector<IslandCoord> east{{0, 0}, {1, 0}};
    const std::vector<IslandCoord> west{{1, 0}, {0, 0}};
    EXPECT_TRUE(mesh.reservePath(east, 10));
    // The opposite direction has its own channels.
    EXPECT_TRUE(mesh.reservePath(west, 10));
    EXPECT_FALSE(mesh.reservePath(east, 1));
}

TEST(IslandMesh, WindowAdvanceClearsReservations)
{
    IslandMesh mesh(3, 3, 1, 10);
    const std::vector<IslandCoord> path{{0, 0}, {1, 0}};
    EXPECT_TRUE(mesh.reservePath(path, 10));
    mesh.advanceWindow();
    EXPECT_EQ(mesh.maxReservable(path), 10u);
    EXPECT_EQ(mesh.windowsElapsed(), 1u);
}

TEST(IslandMesh, UtilizationAggregation)
{
    IslandMesh mesh(2, 1, 1, 10); // a single east/west link pair
    EXPECT_EQ(mesh.totalLinks(), 2u);
    mesh.reservePath({{0, 0}, {1, 0}}, 5);
    mesh.advanceWindow();
    // 5 of 20 available slots used.
    EXPECT_NEAR(mesh.aggregateUtilization(), 0.25, 1e-12);
}

TEST(IslandMesh, TrivialPathNeedsNoCapacity)
{
    IslandMesh mesh(2, 2, 1, 1);
    EXPECT_TRUE(mesh.reservePath({{0, 0}}, 1000));
    EXPECT_EQ(mesh.maxReservable({{1, 1}}), ~std::uint64_t{0});
}

TEST(Workload, GeneratesBoundedDemands)
{
    WorkloadConfig config;
    config.concurrentToffolis = 4;
    ToffoliWorkload workload(config, 8, 8, Rng(1));
    for (int w = 0; w < 50; ++w) {
        const auto demands = workload.nextWindow();
        EXPECT_LE(demands.size(),
                  static_cast<std::size_t>(
                      config.concurrentToffolis
                      * config.interactionsPerWindow));
        for (const auto &demand : demands) {
            EXPECT_GT(demand.pairs, 0u);
            EXPECT_GE(demand.source.x, 0);
            EXPECT_LT(demand.source.x, 8);
            EXPECT_GE(demand.destination.y, 0);
            EXPECT_LT(demand.destination.y, 8);
        }
    }
    EXPECT_GT(workload.gatesStarted(), 4u); // replacement happened
}

TEST(Workload, DriftCoLocatesPartners)
{
    // With drift on, repeated interactions shrink to zero-distance
    // demands over time; with it off every demand is a round trip.
    WorkloadConfig drift;
    drift.concurrentToffolis = 2;
    drift.driftOptimization = true;
    WorkloadConfig no_drift = drift;
    no_drift.driftOptimization = false;

    ToffoliWorkload with(drift, 8, 8, Rng(3));
    ToffoliWorkload without(no_drift, 8, 8, Rng(3));
    std::uint64_t with_pairs = 0, without_pairs = 0;
    for (int w = 0; w < 40; ++w) {
        for (const auto &d : with.nextWindow())
            with_pairs += d.pairs;
        for (const auto &d : without.nextWindow())
            without_pairs += d.pairs;
    }
    EXPECT_LT(with_pairs, without_pairs);
}

TEST(Scheduler, SlotsPerChannelFromEcWindow)
{
    SchedulerConfig config;
    const GreedyEprScheduler scheduler(config, WorkloadConfig{});
    // 0.043 s window / 1.4 ms per purified pair ~ 30 pairs.
    EXPECT_EQ(scheduler.slotsPerChannel(), 30u);
}

TEST(Scheduler, BandwidthTwoFullyOverlaps)
{
    SchedulerConfig sc;
    sc.bandwidth = 2;
    WorkloadConfig wc;
    wc.totalWindows = 100;
    const auto report = GreedyEprScheduler(sc, wc).run();
    EXPECT_TRUE(report.fullyOverlapped());
    // Paper: ~23% aggregate utilization.
    EXPECT_GT(report.utilization, 0.15);
    EXPECT_LT(report.utilization, 0.30);
    // All but the final windows' still-pending prefetches delivered.
    EXPECT_GE(report.pairsDelivered,
              static_cast<std::uint64_t>(0.97 * report.pairsRequested));
}

TEST(Scheduler, BandwidthOneStallsComputation)
{
    SchedulerConfig sc;
    sc.bandwidth = 1;
    WorkloadConfig wc;
    wc.totalWindows = 100;
    const auto report = GreedyEprScheduler(sc, wc).run();
    EXPECT_FALSE(report.fullyOverlapped());
    // A 49-pair transversal interaction cannot fit in ~30 slots.
    EXPECT_GT(report.stalledDemands, report.demands / 20);
}

TEST(Scheduler, MoreBandwidthNeverHurts)
{
    std::uint64_t previous_stalls = ~std::uint64_t{0};
    for (int bandwidth : {1, 2, 4}) {
        SchedulerConfig sc;
        sc.bandwidth = bandwidth;
        WorkloadConfig wc;
        wc.totalWindows = 60;
        const auto report = GreedyEprScheduler(sc, wc).run();
        EXPECT_LE(report.stalledDemands, previous_stalls);
        previous_stalls = report.stalledDemands;
    }
}

TEST(Scheduler, BackoffReroutesHappenUnderContention)
{
    SchedulerConfig sc;
    sc.bandwidth = 2;
    WorkloadConfig wc;
    wc.totalWindows = 100;
    const auto report = GreedyEprScheduler(sc, wc).run();
    // The greedy scheduler must actually exercise its backoff path.
    EXPECT_GT(report.backoffReroutes, 0u);
}

TEST(Scheduler, DeterministicForFixedSeed)
{
    SchedulerConfig sc;
    WorkloadConfig wc;
    wc.totalWindows = 40;
    const auto a = GreedyEprScheduler(sc, wc).run();
    const auto b = GreedyEprScheduler(sc, wc).run();
    EXPECT_EQ(a.pairsDelivered, b.pairsDelivered);
    EXPECT_EQ(a.stalledDemands, b.stalledDemands);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Scheduler, UtilizationWithinPhysicalBounds)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        SchedulerConfig sc;
        sc.seed = seed;
        WorkloadConfig wc;
        wc.totalWindows = 50;
        const auto report = GreedyEprScheduler(sc, wc).run();
        EXPECT_GE(report.utilization, 0.0);
        EXPECT_LE(report.utilization, 1.0);
        EXPECT_LE(report.pairsDelivered, report.pairsRequested);
    }
}
