/**
 * @file
 * Lane-compaction / segment-migration property suite.
 *
 * The load-bearing invariant of the batched Monte Carlo: every
 * BatchOptions setting -- shot-group width, lane compaction on/off,
 * segment-migration fill threshold -- is an execution-shape choice
 * only. A lane's draw sequence is preserved exactly through every
 * regrouping (verified-prep retry pool, pooled repeat extraction /
 * verification / network segments, dense twin subtrees), so all
 * integer-counted experiment statistics must be byte-identical to the
 * scalar-grouping reference. This suite promotes that invariance --
 * previously enforced only by the CI determinism gate -- into tier-1
 * ctest, fuzzing the options over a seeded matrix of small experiments.
 *
 * The second half unit-tests the migration primitives themselves:
 * BernoulliWordSampler::exportLane/importLane round trips under
 * adversarial clock states (parked lanes, zero-gap fires, shadow-class
 * lanes mid-series) and the SegmentPool gather/scatter planning.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "arq/batched_monte_carlo.h"
#include "arq/lane_compaction.h"
#include "arq/monte_carlo.h"
#include "common/batched_sampler.h"
#include "common/rng.h"
#include "ecc/steane.h"

using namespace qla;
using namespace qla::arq;

namespace {

struct RunResult
{
    sim::RateStat rate;
    ExperimentStats stats;
};

RunResult
runExperiment(double p, int level, std::size_t shots, std::uint64_t seed,
              const BatchOptions &options)
{
    BatchedLogicalQubitExperiment experiment(
        ecc::steaneCode(), NoiseParameters::swept(p), {}, 16, options);
    RunResult result;
    result.rate = experiment.failureRate(level, shots, seed,
                                         &result.stats);
    return result;
}

/**
 * Byte-identical integer counters; the Welford mean is merged in a
 * grouping-dependent order, so it is the one field compared with a
 * tolerance (the sum itself is an exact integer-valued double).
 */
void
expectStatsIdentical(const RunResult &got, const RunResult &want,
                     const std::string &what)
{
    EXPECT_EQ(got.rate.successes(), want.rate.successes()) << what;
    EXPECT_EQ(got.rate.trials(), want.rate.trials()) << what;
    EXPECT_EQ(got.stats.logicalFailure.successes(),
              want.stats.logicalFailure.successes())
        << what;
    EXPECT_EQ(got.stats.logicalFailure.trials(),
              want.stats.logicalFailure.trials())
        << what;
    EXPECT_EQ(got.stats.nontrivialSyndrome.successes(),
              want.stats.nontrivialSyndrome.successes())
        << what;
    EXPECT_EQ(got.stats.nontrivialSyndrome.trials(),
              want.stats.nontrivialSyndrome.trials())
        << what;
    EXPECT_EQ(got.stats.prepAttempts.count(),
              want.stats.prepAttempts.count())
        << what;
    EXPECT_DOUBLE_EQ(got.stats.prepAttempts.sum(),
                     want.stats.prepAttempts.sum())
        << what;
    EXPECT_DOUBLE_EQ(got.stats.prepAttempts.min(),
                     want.stats.prepAttempts.min())
        << what;
    EXPECT_DOUBLE_EQ(got.stats.prepAttempts.max(),
                     want.stats.prepAttempts.max())
        << what;
    EXPECT_NEAR(got.stats.prepAttempts.mean(),
                want.stats.prepAttempts.mean(), 1e-12)
        << what;
}

std::string
describeOptions(const BatchOptions &options)
{
    return "group=" + std::to_string(options.groupWords) + " compaction="
        + std::to_string(options.laneCompaction) + " fill="
        + std::to_string(options.migrationFillThreshold) + " plancache="
        + std::to_string(options.firePlanCache);
}

} // namespace

TEST(LaneCompaction, RandomizedBatchOptionsBitIdentical)
{
    // Seeded fuzz over the execution-shape space, swept from just above
    // threshold to deep in the retry-heavy tail so every migration path
    // (prep retries, prep series, repeat extraction, verification /
    // network rounds, dense twin subtrees) actually runs.
    struct Config
    {
        double p;
        int level;
        std::size_t shots;
    };
    const Config configs[] = {
        {6e-3, 1, 1500},  {2.5e-2, 1, 800}, {8e-3, 2, 300},
        {1.4e-2, 2, 260}, {2.5e-2, 2, 160},
    };
    Rng fuzz(20260729);
    const double fills[] = {0.0, 0.1, 0.25, 0.5, 1.0, 4.0};
    for (const Config &cfg : configs) {
        // Scalar-grouping reference: one 64-shot word at a time, no
        // compaction, no migration.
        const std::uint64_t seed = 1000003 * cfg.level + fuzz.next64() % 997;
        const RunResult reference = runExperiment(
            cfg.p, cfg.level, cfg.shots, seed, BatchOptions{1, false, 0.0});
        for (int trial = 0; trial < 6; ++trial) {
            BatchOptions options;
            options.groupWords = 1 + fuzz.uniformInt(kMaxGroupWords);
            options.laneCompaction = fuzz.uniformInt(4) != 0;
            options.migrationFillThreshold
                = fills[fuzz.uniformInt(std::size(fills))];
            options.firePlanCache = fuzz.uniformInt(2) != 0;
            const RunResult got = runExperiment(cfg.p, cfg.level,
                                                cfg.shots, seed, options);
            expectStatsIdentical(got, reference,
                                 "p=" + std::to_string(cfg.p) + " L"
                                     + std::to_string(cfg.level) + " "
                                     + describeOptions(options));
        }
    }
}

TEST(LaneCompaction, ThreadedRunMatchesScalarGroupingReference)
{
    // The same invariance through the public parallel entry point:
    // thread count, chunk size and batch shape together.
    const double p = 1.2e-2;
    const std::size_t shots = 600;
    const std::uint64_t seed = 77;
    ExperimentStats ref_stats;
    McRunOptions reference;
    reference.threads = 1;
    reference.batch = BatchOptions{1, false, 0.0};
    const auto ref = runLogicalExperiment(ecc::steaneCode(),
                                          NoiseParameters::swept(p), 2,
                                          shots, seed, reference,
                                          &ref_stats);
    for (const int threads : {2, 3}) {
        McRunOptions options;
        options.threads = threads;
        options.chunkShots = 128;
        options.batch = BatchOptions{5, true, 0.25};
        ExperimentStats stats;
        const auto got = runLogicalExperiment(ecc::steaneCode(),
                                              NoiseParameters::swept(p), 2,
                                              shots, seed, options, &stats);
        EXPECT_EQ(got.successes(), ref.successes()) << threads;
        EXPECT_EQ(got.trials(), ref.trials()) << threads;
        EXPECT_EQ(stats.nontrivialSyndrome.successes(),
                  ref_stats.nontrivialSyndrome.successes())
            << threads;
        EXPECT_EQ(stats.prepAttempts.count(),
                  ref_stats.prepAttempts.count())
            << threads;
    }
}

TEST(FirePlanCache, CachedReplayBitIdenticalToUncached)
{
    // The fire-plan cache (and the compiled replay engine it enables)
    // must be invisible in results: plans are rebuilt per (word,
    // replay) from the same draws either way, so cached and uncached
    // runs are byte-identical counters. Sweep masks and retry shapes
    // by level and p so partially-active words, degenerate classes and
    // dense/sparse plan packings all occur.
    struct Config
    {
        double p;
        int level;
        std::size_t shots;
    };
    const Config configs[] = {
        {6e-3, 1, 1500}, {2.5e-2, 1, 800}, {1.4e-2, 2, 260}};
    for (const Config &cfg : configs) {
        BatchOptions uncached;
        uncached.firePlanCache = false;
        const RunResult reference = runExperiment(cfg.p, cfg.level,
                                                  cfg.shots, 424243,
                                                  uncached);
        for (const std::size_t width : {std::size_t{1}, std::size_t{8}}) {
            BatchOptions cached;
            cached.firePlanCache = true;
            cached.simdWidth = width;
            const RunResult got = runExperiment(cfg.p, cfg.level,
                                                cfg.shots, 424243, cached);
            expectStatsIdentical(got, reference,
                                 "p=" + std::to_string(cfg.p) + " L"
                                     + std::to_string(cfg.level)
                                     + " width=" + std::to_string(width));
        }
    }
}

TEST(FirePlanCache, SurvivesCompactionAndSegmentTransplant)
{
    // Lane compaction and SegmentPool migration rebuild words out of
    // transplanted lanes mid-run; replays after a transplant must hit
    // the same cached skeleton with fresh per-word draws and still be
    // byte-identical to the uncached interpreter. Level 2 above
    // threshold drives prep retries, twin migration and the
    // verification-pair segment; fill = 4.0 migrates maximally
    // eagerly.
    BatchOptions uncached;
    uncached.firePlanCache = false;
    uncached.laneCompaction = true;
    uncached.migrationFillThreshold = 4.0;
    const RunResult reference = runExperiment(2.5e-2, 2, 240, 8675309,
                                              uncached);
    BatchOptions cached = uncached;
    cached.firePlanCache = true;
    const RunResult got = runExperiment(2.5e-2, 2, 240, 8675309, cached);
    expectStatsIdentical(got, reference, "compaction+transplant");

    // And with compaction off: never-compacted words keep full masks,
    // exercising the all-lanes dense path against the same reference
    // stream.
    BatchOptions uncached_plain;
    uncached_plain.firePlanCache = false;
    uncached_plain.laneCompaction = false;
    const RunResult plain_ref = runExperiment(2.5e-2, 2, 240, 8675309,
                                              uncached_plain);
    BatchOptions cached_plain = uncached_plain;
    cached_plain.firePlanCache = true;
    const RunResult plain_got = runExperiment(2.5e-2, 2, 240, 8675309,
                                              cached_plain);
    expectStatsIdentical(plain_got, plain_ref, "no-compaction");
}

//
// Sampler transplant primitives under adversarial clock states.
//

namespace {

LaneRngs
familyLanes(const RngFamily &family)
{
    LaneRngs lanes;
    for (std::size_t l = 0; l < kBatchLanes; ++l)
        lanes[l] = family.stream(l);
    return lanes;
}

} // namespace

TEST(SamplerTransplant, ZeroGapFiresSurviveRoundTrip)
{
    // p close to 1 makes gaps of one trial ("fires every call") the
    // common case; the exported remaining-trials state is then always
    // at its minimum legal value of 1, right at the assert boundary.
    for (const double p : {0.9, 0.5}) {
        RngFamily family(404);
        const int lane = 13;

        LaneRngs ref_lanes = familyLanes(family);
        BernoulliWordSampler reference(p);
        std::vector<bool> want;
        for (int t = 0; t < 400; ++t)
            want.push_back((reference.sample(~0ULL, ref_lanes) >> lane)
                           & 1);

        LaneRngs home_lanes = familyLanes(family);
        LaneRngs away_lanes;
        BernoulliWordSampler home(p);
        BernoulliWordSampler away(p);
        std::vector<bool> got;
        int t = 0;
        for (int phase = 0; phase < 40; ++phase) {
            // Move immediately after whatever the last trial did --
            // including directly after a fire, when the redrawn gap of
            // a p = 0.9 lane is almost always exactly 1.
            for (int i = 0; i < 7; ++i, ++t)
                got.push_back((home.sample(~0ULL, home_lanes) >> lane)
                              & 1);
            away_lanes[lane] = home_lanes[lane];
            home.moveLaneTo(away, lane, lane);
            for (int i = 0; i < 3; ++i, ++t)
                got.push_back((away.sample(std::uint64_t{1} << lane,
                                           away_lanes)
                               >> lane)
                              & 1);
            home_lanes[lane] = away_lanes[lane];
            away.moveLaneTo(home, lane, lane);
        }
        ASSERT_EQ(got.size(), want.size());
        EXPECT_EQ(got, want) << "p = " << p;
    }
}

TEST(SamplerTransplant, ParkedLaneRoundTripsExactly)
{
    // A lane parked by a mask change (seen, not armed) must export its
    // frozen remaining-trials count, and the count must survive any
    // number of import/export hops unchanged.
    RngFamily family(11);
    LaneRngs lanes = familyLanes(family);
    BernoulliWordSampler sampler(0.07);
    for (int t = 0; t < 50; ++t)
        sampler.sample(~0ULL, lanes);
    sampler.sample(1ULL, lanes); // parks every lane but 0

    const std::int64_t remaining = sampler.exportLane(21);
    ASSERT_GE(remaining, 1);
    BernoulliWordSampler hop1(0.07), hop2(0.07);
    hop1.importLane(40, remaining);
    hop2.importLane(3, hop1.exportLane(40));
    EXPECT_EQ(hop2.exportLane(3), remaining);

    // An unseen lane keeps exporting kLaneUnseen through hops.
    EXPECT_EQ(hop1.exportLane(40), BernoulliWordSampler::kLaneUnseen);
    hop1.importLane(40, BernoulliWordSampler::kLaneUnseen);
    EXPECT_EQ(hop1.exportLane(40), BernoulliWordSampler::kLaneUnseen);
}

TEST(SamplerTransplant, ShadowClassLaneMovesMidSeries)
{
    // The migration pattern of a real retry path: a lane draws from a
    // primary sampler on the straight-line schedule and from a shadow
    // sampler of the same probability on sporadic retry bursts, all
    // from one shared stream. Moving the shadow clock to a pool sampler
    // mid-burst (while the primary clock stays home, parked mid-series)
    // must leave both fire sequences exactly as if nothing ever moved.
    const double p_primary = 0.04;
    const double p_shadow = 0.04;
    const int lane = 27;
    RngFamily family(555);

    auto run = [&](bool migrate) {
        LaneRngs lanes = familyLanes(family);
        LaneRngs pool_lanes;
        BernoulliWordSampler primary(p_primary);
        BernoulliWordSampler shadow(p_shadow);
        BernoulliWordSampler pool(p_shadow);
        std::vector<bool> fires;
        for (int round = 0; round < 120; ++round) {
            for (int t = 0; t < 5; ++t)
                fires.push_back(
                    (primary.sample(~0ULL, lanes) >> lane) & 1);
            // Shadow burst: two trials at home...
            for (int t = 0; t < 2; ++t)
                fires.push_back(
                    (shadow.sample(std::uint64_t{1} << lane, lanes)
                     >> lane)
                    & 1);
            if (migrate) {
                // ...then the rest of the burst in the pool, clock
                // carried over mid-series, and back afterwards.
                pool_lanes[3] = lanes[lane];
                shadow.moveLaneTo(pool, 3, lane);
                for (int t = 0; t < 3; ++t)
                    fires.push_back(
                        (pool.sample(std::uint64_t{1} << 3, pool_lanes)
                         >> 3)
                        & 1);
                lanes[lane] = pool_lanes[3];
                pool.moveLaneTo(shadow, lane, 3);
            } else {
                for (int t = 0; t < 3; ++t)
                    fires.push_back(
                        (shadow.sample(std::uint64_t{1} << lane, lanes)
                         >> lane)
                        & 1);
            }
        }
        return fires;
    };

    const std::vector<bool> stationary = run(false);
    const std::vector<bool> migrated = run(true);
    EXPECT_EQ(migrated, stationary);
}

TEST(SamplerTransplant, TransplantedDrawSequenceEqualsNeverMoved)
{
    // Regression for the central contract: after any number of moves
    // across sampler objects and lane positions, the subsequent draw
    // sequence equals the never-moved lane's, trial for trial.
    const double p = 0.03;
    RngFamily family(9001);

    LaneRngs ref_lanes = familyLanes(family);
    BernoulliWordSampler reference(p);
    std::vector<bool> want;
    for (int t = 0; t < 2400; ++t)
        want.push_back((reference.sample(~0ULL, ref_lanes) >> 31) & 1);

    LaneRngs lanes = familyLanes(family);
    std::array<BernoulliWordSampler, 3> hops{
        BernoulliWordSampler(p), BernoulliWordSampler(p),
        BernoulliWordSampler(p)};
    LaneRngs hop_lanes[3];
    hop_lanes[0] = lanes;
    int where = 0;
    std::size_t slot = 31;
    std::vector<bool> got;
    Rng shuffle(4242);
    for (int seg = 0; seg < 24; ++seg) {
        for (int t = 0; t < 100; ++t)
            got.push_back((hops[where].sample(
                               where == 0 ? ~0ULL
                                          : (std::uint64_t{1} << slot),
                               hop_lanes[where])
                           >> slot)
                          & 1);
        const int next = (where + 1 + shuffle.uniformInt(2)) % 3;
        const std::size_t next_slot
            = next == 0 ? 31 : shuffle.uniformInt(kBatchLanes);
        hop_lanes[next][next_slot] = hop_lanes[where][slot];
        hops[where].moveLaneTo(hops[next], next_slot, slot);
        where = next;
        slot = next_slot;
    }
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(got, want);
}

TEST(SamplerTransplant, MismatchedProbabilityDies)
{
    BernoulliWordSampler a(0.1);
    BernoulliWordSampler b(0.2);
    RngFamily family(1);
    LaneRngs lanes = familyLanes(family);
    a.sample(~0ULL, lanes);
    EXPECT_DEATH(a.moveLaneTo(b, 0, 0), "probabilities");
}

//
// SegmentPool planning and row/plane movement.
//

TEST(SegmentPool, RowGatherScatterRoundTrip)
{
    Rng rng(31337);
    const std::size_t num_qubits = 5;
    NoiseClassTable classes;
    classes.classOf(0.25);

    LaneSet mask;
    mask.n = 4;
    mask.w = {};
    mask.w[0] = rng.next64();
    mask.w[1] = 0; // a hole: word with no migrated lanes
    mask.w[2] = rng.next64() & rng.next64();
    mask.w[3] = rng.next64() | rng.next64(); // > 64 lanes total

    quantum::GroupPauliFrames frames(num_qubits, 4);
    std::vector<std::uint64_t> x_orig, z_orig;
    for (std::size_t w = 0; w < 4; ++w)
        for (std::size_t q = 0; q < num_qubits; ++q) {
            const std::uint64_t x = rng.next64(), z = rng.next64();
            frames.injectX(w, q, x);
            frames.injectZ(w, q, z);
            x_orig.push_back(x);
            z_orig.push_back(z);
        }

    SegmentPool pool;
    const std::size_t count = pool.plan(mask);
    ASSERT_EQ(count, mask.count());
    ASSERT_EQ(pool.chunkCount(), (count + 63) / 64);

    // Gather every row into dense scratch words, wipe the home bits,
    // scatter back: the masked lanes must be restored exactly and the
    // unmasked lanes left at zero.
    quantum::BatchedPauliFrame dense(num_qubits);
    std::vector<quantum::BatchedPauliFrame> gathered(
        pool.chunkCount(), quantum::BatchedPauliFrame(num_qubits));
    for (std::size_t k = 0; k < pool.chunkCount(); ++k)
        for (std::size_t q = 0; q < num_qubits; ++q)
            pool.gatherRow(k, frames, q, gathered[k], q);
    frames.reset();
    for (std::size_t k = 0; k < pool.chunkCount(); ++k)
        for (std::size_t q = 0; q < num_qubits; ++q)
            pool.scatterRow(k, frames, q, gathered[k], q);
    for (std::size_t w = 0; w < 4; ++w)
        for (std::size_t q = 0; q < num_qubits; ++q) {
            EXPECT_EQ(frames.xWord(w, q),
                      x_orig[w * num_qubits + q] & mask.w[w])
                << "w=" << w << " q=" << q;
            EXPECT_EQ(frames.zWord(w, q),
                      z_orig[w * num_qubits + q] & mask.w[w])
                << "w=" << w << " q=" << q;
        }
}

TEST(SegmentPool, ScatterPlaneMatchesManualPlacement)
{
    Rng rng(8);
    LaneSet mask;
    mask.n = 3;
    mask.w = {};
    mask.w[0] = rng.next64() & rng.next64() & rng.next64();
    mask.w[1] = rng.next64() & rng.next64();
    mask.w[2] = rng.next64() & rng.next64() & rng.next64();

    SegmentPool pool;
    const std::size_t count = pool.plan(mask);

    // Dense plane: an arbitrary bit pattern over the migrated slots.
    std::vector<std::uint64_t> planes(pool.chunkCount());
    for (auto &p : planes)
        p = rng.next64();

    std::array<std::uint64_t, kMaxGroupWords> out{};
    for (std::size_t k = 0; k < pool.chunkCount(); ++k)
        pool.scatterPlane(k, planes[k], out.data(), 1);

    // Manual reference: slot j of the (word, lane)-sorted gather order.
    std::array<std::uint64_t, kMaxGroupWords> want{};
    std::size_t j = 0;
    for (std::uint32_t w = 0; w < mask.n; ++w) {
        std::uint64_t lanes = mask.w[w];
        while (lanes) {
            const int l = std::countr_zero(lanes);
            lanes &= lanes - 1;
            if ((planes[j / 64] >> (j % 64)) & 1)
                want[w] |= std::uint64_t{1} << l;
            ++j;
        }
    }
    ASSERT_EQ(j, count);
    for (std::size_t w = 0; w < kMaxGroupWords; ++w)
        EXPECT_EQ(out[w], want[w]) << "word " << w;
}
