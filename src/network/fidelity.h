/**
 * @file
 * Fidelity-aware EPR delivery: the bridge between the teleport stack
 * (Werner pairs, nested pumping, swapping) and the event-driven
 * interconnect (PR 7 noisy-interconnect co-design).
 *
 * The paper budgets channel bandwidth (Figure 9) assuming every
 * teleported pair arrives usable. This module prices the assumption:
 * each mesh link produces elementary Werner pairs of some fidelity,
 * pumps them to a purification-level target using the Section 4.2
 * nested-pumping planner (teleport/purification.h), and pays for the
 * pumping with *channel slots* -- a purified pair costs
 * SegmentPlan::expectedElementaryPairs elementary transports, so the
 * purified-pair capacity of a channel shrinks accordingly. Multi-hop
 * routes compose per-link pairs by entanglement swapping, and
 * depolarization bursts on crossed links degrade the delivered pair
 * further. The co-simulator gates gate windows on the resulting
 * end-to-end fidelity.
 */

#ifndef QLA_NETWORK_FIDELITY_H
#define QLA_NETWORK_FIDELITY_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "teleport/purification.h"
#include "teleport/werner.h"

namespace qla::network {

/**
 * Fidelity model for EPR delivery in the co-simulator.
 *
 * Defaults reproduce the ideal interconnect exactly: elementary
 * fidelity 1.0, no pumping, no operation error, and no delivery
 * threshold leave every counter and routing decision bit-identical to
 * the fault-free engine.
 */
struct FidelityConfig
{
    /** Werner fidelity of one elementary (single-link) pair. */
    double elementaryFidelity = 1.0;
    /**
     * Purification level L: each link pumps its pairs toward the ladder
     * target 1 - (1 - F_elem) / 4^L (capped just under the pumping
     * ceiling). Level 0 ships raw elementary pairs at slot cost 1.
     */
    int purificationLevel = 0;
    /** Local-operation error charged per pump/swap step. */
    double opError = 0.0;
    /**
     * Minimum acceptable end-to-end delivered fidelity. Pairs arriving
     * below the threshold are rejected (counted as dropped) and the
     * demand retries with backoff. 0 disables gating.
     */
    double deliveryThreshold = 0.0;
    /** Rejection retries before a demand is abandoned. */
    int retryBudget = 3;
    /** Base backoff after a rejection, in windows (doubles per retry,
     *  capped at 8x). */
    int backoffWindows = 1;
    /** Fallback penalty charged to a gate per abandoned demand, in
     *  stall windows (the cost of falling back to ballistic shuttling /
     *  recompilation for the missing interaction). */
    int abandonPenaltyWindows = 4;

    /** True when the model can alter behavior vs the ideal engine. */
    bool enabled() const
    {
        return elementaryFidelity < 1.0 || purificationLevel > 0
            || opError > 0.0 || deliveryThreshold > 0.0;
    }
};

/** Pumping ladder target for level @p level from elementary fidelity. */
double purificationTarget(double elementary_f, int level);

/**
 * Per-link production plan: what one purified pair costs and what
 * fidelity it reaches, derived from the nested-pumping planner.
 */
struct LinkPurificationPlan
{
    /** Post-pumping Werner fidelity of one link pair. */
    double linkFidelity = 1.0;
    /** Elementary channel transports consumed per delivered pair
     *  (the slot cost; >= 1). */
    double elementaryPairsPerPair = 1.0;
    /** Underlying pumping plan (empty/trivial at level 0). */
    teleport::SegmentPlan plan;
};

/**
 * Build the per-link plan for @p config. Level 0 (or a non-purifiable
 * elementary fidelity) ships raw pairs at cost 1; otherwise pumping is
 * planned to the ladder target, falling back to the best reachable
 * fidelity when the target sits above the operation-noise ceiling.
 */
LinkPurificationPlan purifiedLinkPlan(const FidelityConfig &config);

/** Purified-pair slots per channel after paying the pumping traffic:
 *  floor(elementary_slots / cost), clamped to >= 1. */
std::uint64_t purifiedSlotsPerChannel(std::uint64_t elementary_slots,
                                      const LinkPurificationPlan &plan);

/**
 * End-to-end fidelity of a route, precomputed per hop count.
 *
 * A route of h links swaps h link pairs end-to-end (h-1 swap steps,
 * each charged the local-operation error); bursting links crossed add
 * one depolarization each.
 */
class PathFidelityTable
{
  public:
    PathFidelityTable() = default;

    /** @param max_hops Longest route the router can produce. */
    PathFidelityTable(double link_fidelity, double op_error, int max_hops);

    /** Fidelity after @p hops links (clamped to the table). */
    double atHops(int hops) const;

    /** Degrade @p fidelity by @p burst_links depolarization bursts. */
    static double withBursts(double fidelity, int burst_links,
                             double burst_depolarization);

  private:
    std::vector<double> by_hops_; // [0] unused sentinel = link fidelity
};

/**
 * Pairs lost shipping @p pairs across @p hops links with per-hop loss
 * @p per_hop_loss: one Bernoulli per pair at the compound escape rate.
 * Draws nothing when the loss rate is zero.
 */
std::uint64_t sampleLostPairs(Rng &rng, std::uint64_t pairs,
                              double per_hop_loss, int hops);

} // namespace qla::network

#endif // QLA_NETWORK_FIDELITY_H
