/**
 * @file
 * Deterministic pseudo-random number generation for Monte-Carlo runs.
 *
 * xoshiro256** seeded through SplitMix64, per Blackman & Vigna. Every
 * stochastic component in the simulator draws from an explicitly seeded
 * Rng so that experiments are reproducible bit-for-bit from a seed.
 */

#ifndef QLA_COMMON_RNG_H
#define QLA_COMMON_RNG_H

#include <array>
#include <cstdint>

namespace qla {

/**
 * Small, fast, reproducible PRNG (xoshiro256**).
 *
 * Not cryptographic; statistical quality is more than sufficient for
 * depolarizing-noise Monte Carlo.
 */
class Rng
{
  public:
    /** Seed through SplitMix64 so any 64-bit seed gives a good state. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli trial: true with probability p. */
    bool bernoulli(double p);

    /**
     * Split off an independent child stream.
     *
     * Used to give each Monte-Carlo shot its own stream so shots can be
     * reordered or parallelized without changing results.
     */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace qla

#endif // QLA_COMMON_RNG_H
