/**
 * @file
 * Circuit text-format tests: round trips, error reporting, and executing
 * parsed circuits.
 */

#include <gtest/gtest.h>

#include "arq/executor.h"
#include "circuit/builders.h"
#include "circuit/parser.h"
#include "common/rng.h"
#include "quantum/tableau.h"

using namespace qla;
using namespace qla::circuit;

TEST(Parser, MinimalCircuit)
{
    const auto result = parseCircuit("qubits 2\nh 0\ncnot 0 1\n");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.circuit->numQubits(), 2u);
    EXPECT_EQ(result.circuit->size(), 2u);
    EXPECT_EQ(result.circuit->ops()[1].kind, OpKind::Cnot);
}

TEST(Parser, CommentsAndBlankLines)
{
    const auto result = parseCircuit(
        "# my circuit\n\nqubits 1\n  # indented comment\nx 0 # flip\n");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.circuit->size(), 1u);
    EXPECT_EQ(result.circuit->name(), "my circuit");
}

TEST(Parser, ConditionalSuffix)
{
    const auto result = parseCircuit(
        "qubits 2\nmeasure_z 0\nx 1 ? m0\n");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.circuit->ops()[1].condition, 0);
}

TEST(Parser, ErrorUnknownOp)
{
    const auto result = parseCircuit("qubits 1\nfrobnicate 0\n");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("line 2"), std::string::npos);
    EXPECT_NE(result.error.find("frobnicate"), std::string::npos);
}

TEST(Parser, ErrorMissingQubitsDirective)
{
    EXPECT_FALSE(parseCircuit("h 0\n").ok());
    EXPECT_FALSE(parseCircuit("").ok());
}

TEST(Parser, ErrorOutOfRangeOperand)
{
    const auto result = parseCircuit("qubits 2\ncnot 0 2\n");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("out of range"), std::string::npos);
}

TEST(Parser, ErrorMissingOperand)
{
    EXPECT_FALSE(parseCircuit("qubits 3\ntoffoli 0 1\n").ok());
}

TEST(Parser, ErrorForwardCondition)
{
    // Condition on a measurement that has not happened yet.
    EXPECT_FALSE(parseCircuit("qubits 2\nx 1 ? m0\nmeasure_z 0\n").ok());
}

TEST(Parser, ErrorDuplicateQubits)
{
    EXPECT_FALSE(parseCircuit("qubits 2\nqubits 3\n").ok());
}

namespace {

class RoundTripTest
    : public ::testing::TestWithParam<const char *>
{
  public:
    static QuantumCircuit
    build(const std::string &which)
    {
        if (which == "bell")
            return bellPair();
        if (which == "ghz")
            return ghz(6);
        if (which == "teleport")
            return teleportation();
        return qft(5);
    }
};

} // namespace

TEST_P(RoundTripTest, SerializeParseSerialize)
{
    const auto original = build(GetParam());
    const std::string text = serializeCircuit(original);
    const auto parsed = parseCircuit(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(serializeCircuit(*parsed.circuit), text);
    EXPECT_EQ(parsed.circuit->size(), original.size());
    EXPECT_EQ(parsed.circuit->numQubits(), original.numQubits());
}

INSTANTIATE_TEST_SUITE_P(Builders, RoundTripTest,
                         ::testing::Values("bell", "ghz", "teleport",
                                           "qft"));

TEST(Parser, ParsedTeleportationStillTeleports)
{
    const auto parsed = parseCircuit(
        serializeCircuit(teleportation()));
    ASSERT_TRUE(parsed.ok());
    Rng rng(13);
    for (int trial = 0; trial < 16; ++trial) {
        quantum::StabilizerTableau state(3);
        state.h(0); // teleport |+>
        arq::executeOnTableau(*parsed.circuit, state, rng);
        const auto x2 = state.deterministicValue(
            quantum::PauliString::fromString("IIX"));
        ASSERT_TRUE(x2.has_value());
        EXPECT_FALSE(*x2);
    }
}
