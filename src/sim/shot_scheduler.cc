#include "sim/shot_scheduler.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace qla::sim {

namespace {

/**
 * Strict QLA_THREADS parse: the whole value (leading whitespace aside)
 * must be a positive decimal integer that fits an int. std::atoi would
 * silently read "2x" as 2 and "four" as 0, turning typos into
 * surprising thread counts or a silent hardware-concurrency fallback.
 */
bool
parseThreadsEnv(const char *env, int &threads)
{
    errno = 0;
    char *end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || value <= 0
        || value > 1 << 20)
        return false;
    threads = static_cast<int>(value);
    return true;
}

} // namespace

int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("QLA_THREADS")) {
        int parsed = 0;
        if (parseThreadsEnv(env, parsed))
            return parsed;
        // Warn once per malformed value so a typo is visible in the
        // log without spamming every sweep chunk.
        static std::mutex warn_mutex;
        static std::string warned_value;
        std::lock_guard<std::mutex> lock(warn_mutex);
        if (warned_value != env) {
            warned_value = env;
            std::fprintf(stderr,
                         "qla: ignoring malformed QLA_THREADS=\"%s\" "
                         "(want a positive integer); falling back to "
                         "hardware concurrency\n",
                         env);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ShotScheduler::ShotScheduler(int threads)
    : threads_(resolveThreadCount(threads)), deques_(threads_)
{
    pool_.reserve(threads_ - 1);
    for (int w = 1; w < threads_; ++w)
        pool_.emplace_back([this, w] { poolThreadMain(w); });
}

ShotScheduler::~ShotScheduler()
{
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &t : pool_)
        t.join();
}

void
ShotScheduler::run(std::size_t count, const JobFn &fn)
{
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    if (count == 0)
        return;
    if (threads_ == 1 || count == 1) {
        // Sequential fast path: no pool handoff, exceptions propagate
        // directly.
        for (std::size_t job = 0; job < count; ++job)
            fn(job, 0);
        return;
    }

    // Publish the run state BEFORE any job becomes poppable: a
    // straggler pool thread still scanning the deques from the previous
    // generation may claim a job the moment it is pushed (that is
    // harmless -- it just helps this generation early), so fn_ and
    // pending_ must already be valid. The deque mutex ordering makes
    // these writes visible to any thread that pops a job.
    fn_ = &fn;
    cancelled_.store(false, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(error_mutex_);
        error_ = nullptr;
    }
    pending_.store(count, std::memory_order_release);

    // Contiguous block distribution: worker w starts on jobs
    // [w * count / T, (w + 1) * count / T), so per-worker caches walk
    // consecutive shot ranges until stealing kicks in.
    const std::size_t T = static_cast<std::size_t>(threads_);
    for (std::size_t w = 0; w < T; ++w) {
        std::lock_guard<std::mutex> lock(deques_[w].mutex);
        qla_assert(deques_[w].jobs.empty());
        const std::size_t begin = w * count / T;
        const std::size_t end = (w + 1) * count / T;
        for (std::size_t job = begin; job < end; ++job)
            deques_[w].jobs.push_back(job);
    }

    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        ++generation_;
    }
    wake_cv_.notify_all();

    workLoop(0);

    // No job left to claim from worker 0's vantage point; wait for jobs
    // still executing on pool threads. pending_ only reaches zero after
    // the last job function returned.
    {
        std::unique_lock<std::mutex> lock(wake_mutex_);
        wake_cv_.wait(lock, [this] {
            return pending_.load(std::memory_order_acquire) == 0;
        });
    }
    fn_ = nullptr;

    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(error_mutex_);
        error = error_;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ShotScheduler::poolThreadMain(int worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(wake_mutex_);
            wake_cv_.wait(lock,
                          [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
        }
        workLoop(worker);
    }
}

void
ShotScheduler::workLoop(int worker)
{
    // Jobs only ever leave the deques mid-generation, so empty deques
    // with pending work mean every remaining job is already executing
    // somewhere: nothing left for this worker to do.
    std::size_t job;
    while (tryPop(worker, job) || trySteal(worker, job))
        executeJob(job, worker);
}

bool
ShotScheduler::tryPop(int worker, std::size_t &job)
{
    WorkerDeque &dq = deques_[worker];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.jobs.empty())
        return false;
    job = dq.jobs.front();
    dq.jobs.pop_front();
    return true;
}

bool
ShotScheduler::trySteal(int thief, std::size_t &job)
{
    for (int i = 1; i < threads_; ++i) {
        WorkerDeque &dq = deques_[(thief + i) % threads_];
        std::lock_guard<std::mutex> lock(dq.mutex);
        if (dq.jobs.empty())
            continue;
        // Steal from the tail: the victim keeps walking its block in
        // order from the head.
        job = dq.jobs.back();
        dq.jobs.pop_back();
        return true;
    }
    return false;
}

void
ShotScheduler::executeJob(std::size_t job, int worker)
{
    if (!cancelled_.load(std::memory_order_relaxed)) {
        try {
            (*fn_)(job, worker);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(error_mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            cancelled_.store(true, std::memory_order_relaxed);
        }
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last job: wake the caller blocked in run().
        std::lock_guard<std::mutex> lock(wake_mutex_);
        wake_cv_.notify_all();
    }
}

} // namespace qla::sim
