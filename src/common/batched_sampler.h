/**
 * @file
 * Word-batched Bernoulli sampling for the 64-shot-per-word engines.
 *
 * The batched Monte-Carlo engines evaluate 64 shots per machine word, so
 * every noise-injection site needs a 64-bit word whose bit l is an
 * independent Bernoulli(p) draw from lane l's private stream. Drawing one
 * uniform per lane per site would cost as much as the scalar simulation;
 * instead each lane advances by geometric gaps ("how many trials until my
 * next success"), so the common all-lanes-active no-fire case is a single
 * counter bump regardless of p.
 *
 * Determinism contract: a lane's draws are a function of its own Rng
 * stream and of the sequence of sites at which that lane was active --
 * never of which other lanes share the word. Together with
 * RngFamily-indexed lane streams this makes batched results independent
 * of how shots are grouped into words.
 */

#ifndef QLA_COMMON_BATCHED_SAMPLER_H
#define QLA_COMMON_BATCHED_SAMPLER_H

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"

namespace qla {

/** Number of Monte-Carlo shots packed into one machine word. */
inline constexpr std::size_t kBatchLanes = 64;

/** One private Rng per lane of a 64-shot batch. */
using LaneRngs = std::array<Rng, kBatchLanes>;

/**
 * Granularity at which replayed traces turn noise-class probabilities
 * into fired lanes (see arq/frame_trace.h). Both modes draw each lane's
 * faults i.i.d. Bernoulli(p) over the sites at which the lane was
 * active, from the lane's own stream, so they are statistically
 * identical; they realize different draw sequences, so results are
 * bit-identical across widths/groupings/threads *within* a mode only.
 */
enum class FaultSampling : std::uint8_t {
    /** One geometric-gap trial per (site, word): BernoulliWordSampler. */
    SiteGeometric,
    /**
     * One batched walk per (fault class, trace, word): each active
     * lane's remaining-trials clock is advanced over the trace's whole
     * per-class site list at once (ClassDrawSampler), and the resulting
     * fire positions are expanded to per-site lane masks before replay.
     */
    TraceDraws,
};

/** 1 / log2(1 - p) for geometric inversion; 0 for degenerate p. */
double geometricInvLog2q(double p);

/**
 * Number of Bernoulli(p) trials up to and including the next success
 * (>= 1), by inversion from one uniform draw of @p rng.
 * @p inv_log2_q must be geometricInvLog2q(p) for a p in (0, 1).
 */
std::int64_t geometricGap(Rng &rng, double inv_log2_q);

/**
 * Batched Bernoulli(p) bit source over 64 lanes.
 *
 * sample(active) returns the word of lanes (a subset of @p active) whose
 * current trial succeeded; inactive lanes neither fire nor consume a
 * trial. Each lane's success sequence is i.i.d. Bernoulli(p) over the
 * trials at which it was active, realized by geometric gap sampling
 * from the lane's own stream (inversion of the exact geometric CDF; the
 * fast log2 it uses deviates from exact inversion on a ~1e-6 fraction
 * of draws, far below anything a Monte-Carlo estimate can resolve).
 */
class BernoulliWordSampler
{
  public:
    explicit BernoulliWordSampler(double p);

    double probability() const { return p_; }

    /**
     * Forget all lane state. Call at batch boundaries, after reseeding
     * the lane streams; lanes re-arm from their streams on first use.
     */
    void disarm();

    /**
     * Lane-state handle for moving a shot between words (lane
     * compaction): the frozen number of active trials remaining until
     * the lane's next success, or kLaneUnseen for a lane that has not
     * drawn its first gap yet.
     */
    static constexpr std::int64_t kLaneUnseen = 0;

    /**
     * Park @p lane and remove it from this sampler, returning its
     * remaining-trials state for importLane in another sampler of the
     * same probability. A lane re-imported where it left off continues
     * the exact trial/draw sequence it would have produced in place --
     * that is what lets lane compaction regroup shots across words
     * without breaking the determinism contract.
     */
    std::int64_t exportLane(std::size_t lane)
    {
        const std::uint64_t bit = std::uint64_t{1} << lane;
        if (!(seen_ & bit))
            return kLaneUnseen;
        std::int64_t remaining;
        if (armed_ & bit) {
            // Armed lanes keep an absolute fire time; parked form is
            // the trial count still to go (>= 1: a due lane fires
            // inside sample(), so cnt_ > elapsed_ between calls).
            (*ring_)[cnt_[lane] & kRingMask] &= ~bit;
            remaining = cnt_[lane] - elapsed_;
            armed_ &= ~bit;
        } else {
            remaining = cnt_[lane]; // already parked
        }
        seen_ &= ~bit;
        cnt_[lane] = kNeverFires;
        qla_assert(remaining >= 1);
        return remaining;
    }

    /**
     * Install @p lane as parked with @p remaining trials to its next
     * success (a value returned by exportLane). The lane must be
     * unknown to this sampler; kLaneUnseen leaves it unseen, so it
     * arms fresh from its stream on first activity, exactly as it
     * would have where it came from.
     */
    void importLane(std::size_t lane, std::int64_t remaining)
    {
        const std::uint64_t bit = std::uint64_t{1} << lane;
        qla_assert(!(seen_ & bit), "importLane over a live lane");
        if (remaining == kLaneUnseen)
            return;
        qla_assert(remaining >= 1);
        seen_ |= bit; // parked (seen, not armed); rebase unparks later
        cnt_[lane] = remaining;
    }

    /**
     * exportLane from this sampler + importLane into @p dst, with the
     * probability pairing asserted: transplanting a clock between
     * samplers of different probabilities would silently break the
     * determinism contract (the remaining-trials count is only
     * meaningful against the same geometric distribution), so every
     * migration path funnels through this check.
     */
    void moveLaneTo(BernoulliWordSampler &dst, std::size_t dst_lane,
                    std::size_t src_lane)
    {
        qla_assert(dst.p_ == p_,
                   "lane clock moved across probabilities ", p_, " -> ",
                   dst.p_);
        dst.importLane(dst_lane, exportLane(src_lane));
    }

    /**
     * One trial for every lane in @p active; returns the fired lanes.
     *
     * Inline fast path: when the active mask equals the armed mask (the
     * straight-line schedule between retries), a trial is one increment
     * and one calendar-bucket load -- lane fire times live in a ring of
     * buckets keyed by trial count, so a site with no due lane costs
     * O(1) regardless of p. A mask change (entering or leaving a retry /
     * conditional path) rebases the sampler once, parking the trial
     * clocks of lanes that left and resuming lanes that returned, after
     * which the new mask runs on the fast path too.
     */
    std::uint64_t sample(std::uint64_t active, LaneRngs &lanes)
    {
        if (active == armed_) {
            if (!active)
                return 0;
            const std::uint64_t due = (*ring_)[++elapsed_ & kRingMask];
            if (!due)
                return 0;
            return fireCheck(due, lanes);
        }
        return rebase(active, lanes);
    }

  private:
    /** Ring slots; fire times collide mod this (cheap re-check later). */
    static constexpr std::size_t kRingSize = 2048;
    static constexpr std::uint64_t kRingMask = kRingSize - 1;

    /** cnt_ value of lanes with no scheduled fire. */
    static constexpr std::int64_t kNeverFires
        = std::numeric_limits<std::int64_t>::max();

    /** Trials until (and including) lane's next success, >= 1. */
    std::int64_t nextGap(Rng &rng) const;

    std::uint64_t fireCheck(std::uint64_t candidates, LaneRngs &lanes);
    std::uint64_t rebase(std::uint64_t active, LaneRngs &lanes);

    // Hot scalars first: the sample()/exportLane fast paths and the
    // per-lane transplant loops touch only these, and keeping them in
    // the object's first cache line instead of behind the 16 KiB ring
    // is worth ~10% of a whole threshold sweep (the transplant paths
    // poke many samplers per migrated lane).
    double p_;
    double inv_log2_q_ = 0.0; // 1 / log2(1 - p) for geometric inversion
    std::uint64_t armed_ = 0;
    std::uint64_t seen_ = 0;
    std::int64_t elapsed_ = 0;

    // Armed lane l fires when the shared trial counter elapsed_ reaches
    // cnt_[l]; bucket cnt_[l] & kRingMask of the ring carries the lane's
    // bit (lanes parked farther than the ring wraps are simply
    // re-checked when their bucket comes around again). Parked lanes
    // (seen_ but not armed_) hold their remaining-trials count in cnt_
    // instead and sit in no bucket; their clocks stand still until the
    // mask brings them back.
    std::array<std::int64_t, kBatchLanes> cnt_{};

    // The calendar lives behind a pointer, zero-filled the first time
    // rebase arms a lane (every ring access is on behalf of an armed
    // lane). Keeping the 16 KiB ring out of the object matters twice:
    // an experiment builds one sampler per (class, word) and in
    // TraceDraws runs only the correction class ever arms, so inline
    // rings would memset megabytes per experiment for buckets never
    // read -- and the lane-transplant paths (segment migration) poke a
    // handful of scalars in many samplers per moved lane, which with
    // 16 KiB objects makes every poke a cold cache line. As a ~600 B
    // object, a model's whole sampler vector stays cache-resident.
    std::unique_ptr<std::array<std::uint64_t, kRingSize>> ring_;
};

/**
 * Trace-level batched Bernoulli(p) clock over 64 lanes
 * (FaultSampling::TraceDraws).
 *
 * Where BernoulliWordSampler takes one trial per site per word,
 * ClassDrawSampler advances each lane over a whole block of @p sites
 * consecutive trials in one walkLane call: in the common no-fire case a
 * lane costs a single counter subtraction for the entire trace instead
 * of a calendar bump per site. The clock is the same parked
 * remaining-trials count the word sampler exports (geometric gaps from
 * the lane's own stream, same inversion), so a lane's fire positions
 * are a pure function of (stream, activity sequence) -- the determinism
 * contract across widths, groupings, compaction and threads holds
 * exactly as for the word sampler. Only the *order* in which a lane's
 * stream is consumed differs (gap draws grouped per class per trace
 * instead of interleaved per site), so SiteGeometric and TraceDraws
 * runs are statistically identical but not bit-identical to each other.
 */
class ClassDrawSampler
{
  public:
    explicit ClassDrawSampler(double p)
        : p_(p), inv_log2_q_(geometricInvLog2q(p))
    {
        qla_assert(p >= 0.0 && p <= 1.0, "Bernoulli probability ", p);
        cnt_.fill(0);
    }

    double probability() const { return p_; }

    /** p <= 0: no lane ever fires and no stream is consumed. */
    bool neverFires() const { return p_ <= 0.0; }

    /** p >= 1: every active lane fires at every site, drawing nothing
     *  (like Rng::bernoulli, certainties consume no randomness). */
    bool alwaysFires() const { return p_ >= 1.0; }

    /** Forget all lane state; lanes re-arm from their streams. */
    void disarm() { seen_ = 0; }

    /** Same parked-lane handle as BernoulliWordSampler. */
    static constexpr std::int64_t kLaneUnseen = 0;

    std::int64_t exportLane(std::size_t lane)
    {
        const std::uint64_t bit = std::uint64_t{1} << lane;
        if (!(seen_ & bit))
            return kLaneUnseen;
        seen_ &= ~bit;
        qla_assert(cnt_[lane] >= 1);
        return cnt_[lane];
    }

    void importLane(std::size_t lane, std::int64_t remaining)
    {
        const std::uint64_t bit = std::uint64_t{1} << lane;
        qla_assert(!(seen_ & bit), "importLane over a live lane");
        if (remaining == kLaneUnseen)
            return;
        qla_assert(remaining >= 1);
        seen_ |= bit;
        cnt_[lane] = remaining;
    }

    void moveLaneTo(ClassDrawSampler &dst, std::size_t dst_lane,
                    std::size_t src_lane)
    {
        qla_assert(dst.p_ == p_,
                   "lane clock moved across probabilities ", p_, " -> ",
                   dst.p_);
        dst.importLane(dst_lane, exportLane(src_lane));
    }

    /**
     * Advance @p lane's clock over @p sites consecutive trials, calling
     * fn(ordinal) for every fired trial (0-based ordinal within the
     * block). Degenerate probabilities must be special-cased by the
     * caller via neverFires()/alwaysFires() -- they consume no stream.
     */
    template <class Fn>
    void walkLane(std::size_t lane, std::int64_t sites, Rng &rng, Fn &&fn)
    {
        const std::uint64_t bit = std::uint64_t{1} << lane;
        std::int64_t pos;
        if (seen_ & bit) {
            pos = cnt_[lane];
        } else {
            pos = geometricGap(rng, inv_log2_q_);
            seen_ |= bit;
        }
        while (pos <= sites) {
            fn(pos - 1);
            pos += geometricGap(rng, inv_log2_q_);
        }
        cnt_[lane] = pos - sites;
    }

    /**
     * walkLane every lane of @p active over the same block of @p sites
     * trials at once, OR-ing each fired trial's lane bit into
     * fires[ordinal] (0-based ordinal within the block; the buffer must
     * hold @p sites words and is only written at fired ordinals).
     *
     * Equivalent draw-for-draw to calling walkLane on each active lane
     * in turn -- a lane only ever consumes its own stream, so the lane
     * iteration order cannot matter -- but the common no-fire case is a
     * flat compare-and-subtract sweep over the 64 lane clocks that the
     * compiler vectorizes, instead of 64 branchy per-lane walks. Only
     * firing lanes (identified by the sweep) pay a per-lane gap walk.
     */
    void walkWord(std::uint64_t active, std::int64_t sites,
                  LaneRngs &lanes, std::uint64_t *fires)
    {
        std::uint64_t fresh = active & ~seen_;
        while (fresh) {
            const int l = std::countr_zero(fresh);
            fresh &= fresh - 1;
            cnt_[l] = geometricGap(lanes[l], inv_log2_q_);
        }
        seen_ |= active;
        // Clock sweep: collect the firing lanes and retire the block's
        // trials from every active clock in one pass (firing lanes go
        // transiently non-positive and are rewound in the walk below).
        std::uint64_t firing = 0;
        if (active == ~std::uint64_t{0}) {
            for (std::size_t l = 0; l < kBatchLanes; ++l)
                firing |= static_cast<std::uint64_t>(cnt_[l] <= sites)
                          << l;
            for (std::size_t l = 0; l < kBatchLanes; ++l)
                cnt_[l] -= sites;
        } else {
            std::uint64_t walk = active;
            while (walk) {
                const int l = std::countr_zero(walk);
                walk &= walk - 1;
                firing |= static_cast<std::uint64_t>(cnt_[l] <= sites)
                          << l;
                cnt_[l] -= sites;
            }
        }
        while (firing) {
            const int l = std::countr_zero(firing);
            firing &= firing - 1;
            const std::uint64_t bit = std::uint64_t{1} << l;
            std::int64_t pos = cnt_[l] + sites;
            do {
                fires[pos - 1] |= bit;
                pos += geometricGap(lanes[l], inv_log2_q_);
            } while (pos <= sites);
            cnt_[l] = pos - sites;
        }
    }

  private:
    double p_;
    double inv_log2_q_;
    /** Trials remaining until lane's next success (valid when seen). */
    std::array<std::int64_t, kBatchLanes> cnt_;
    std::uint64_t seen_ = 0;
};

} // namespace qla

#endif // QLA_COMMON_BATCHED_SAMPLER_H
