#include "ecc/threshold.h"

#include <cmath>

#include "common/logging.h"

namespace qla::ecc {

double
localGateFailureRate(int level, double p0, double pth, double r)
{
    qla_assert(level >= 0 && p0 > 0.0 && pth > 0.0 && r >= 1.0);
    if (level == 0)
        return p0;
    const double exponent = std::pow(2.0, level);
    return (pth / std::pow(r, level)) * std::pow(p0 / pth, exponent);
}

double
maxComputationSize(int level, double p0, double pth, double r)
{
    return 1.0 / localGateFailureRate(level, p0, pth, r);
}

int
requiredRecursionLevel(double computation_size, double p0, double pth,
                       double r, int max_level)
{
    qla_assert(computation_size >= 1.0);
    for (int level = 0; level <= max_level; ++level) {
        if (localGateFailureRate(level, p0, pth, r)
            < 1.0 / computation_size)
            return level;
    }
    return -1;
}

} // namespace qla::ecc
