/**
 * @file
 * Deterministic pseudo-random number generation for Monte-Carlo runs.
 *
 * xoshiro256** seeded through SplitMix64, per Blackman & Vigna. Every
 * stochastic component in the simulator draws from an explicitly seeded
 * Rng so that experiments are reproducible bit-for-bit from a seed.
 */

#ifndef QLA_COMMON_RNG_H
#define QLA_COMMON_RNG_H

#include <array>
#include <cstdint>

namespace qla {

/**
 * Small, fast, reproducible PRNG (xoshiro256**).
 *
 * Not cryptographic; statistical quality is more than sufficient for
 * depolarizing-noise Monte Carlo.
 */
class Rng
{
  public:
    /** Seed through SplitMix64 so any 64-bit seed gives a good state. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next64()
    {
        const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl_(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli trial: true with probability p. */
    bool bernoulli(double p);

    /**
     * Split off an independent child stream.
     *
     * Used to give each Monte-Carlo shot its own stream so shots can be
     * reordered or parallelized without changing results.
     */
    Rng split();

  private:
    static std::uint64_t rotl_(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

/**
 * Deterministic family of independent streams addressed by index.
 *
 * stream(i) is a pure function of (master seed, i): unlike Rng::split(),
 * which advances the parent, a family hands the same stream to shot i no
 * matter how many other streams were drawn or in what order. This is what
 * makes the batched Monte-Carlo engines reproducible regardless of batch
 * width -- shot i's noise depends only on (seed, i), not on which 64-shot
 * word it happened to land in.
 */
class RngFamily
{
  public:
    explicit RngFamily(std::uint64_t master_seed) : master_(master_seed) {}

    /** The independent stream for index @p index. */
    Rng stream(std::uint64_t index) const;

  private:
    std::uint64_t master_;
};

} // namespace qla

#endif // QLA_COMMON_RNG_H
