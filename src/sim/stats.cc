#include "sim/stats.h"

#include <cmath>
#include <cstdio>

namespace qla::sim {

void
ScalarStat::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    ++count_;
    sum_ += value;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
ScalarStat::addRepeated(double value, std::uint64_t count)
{
    if (count == 0)
        return;
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    const double k = static_cast<double>(count);
    const double n = static_cast<double>(count_);
    const double delta = value - mean_;
    count_ += count;
    sum_ += value * k;
    mean_ += delta * k / static_cast<double>(count_);
    // Chan et al. merge of a zero-variance block of k samples.
    m2_ += delta * delta * n * k / static_cast<double>(count_);
}

void
ScalarStat::merge(const ScalarStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    count_ += other.count_;
    sum_ += other.sum_;
    const double n = static_cast<double>(count_);
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
}

double
ScalarStat::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
ScalarStat::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
ScalarStat::stddev() const
{
    return std::sqrt(variance());
}

double
ScalarStat::sem() const
{
    return count_ ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double
ScalarStat::min() const
{
    return count_ ? min_ : 0.0;
}

double
ScalarStat::max() const
{
    return count_ ? max_ : 0.0;
}

void
RateStat::add(bool success)
{
    ++trials_;
    if (success)
        ++successes_;
}

void
RateStat::addBulk(std::uint64_t successes, std::uint64_t trials)
{
    trials_ += trials;
    successes_ += successes;
}

void
RateStat::merge(const RateStat &other)
{
    trials_ += other.trials_;
    successes_ += other.successes_;
}

double
RateStat::rate() const
{
    return trials_ ? static_cast<double>(successes_)
                       / static_cast<double>(trials_)
                   : 0.0;
}

double
RateStat::halfWidth95() const
{
    if (trials_ == 0)
        return 0.0;
    const double z = 1.96;
    const double n = static_cast<double>(trials_);
    const double p = rate();
    const double denom = 1.0 + z * z / n;
    const double half = z * std::sqrt(p * (1.0 - p) / n
                                      + z * z / (4.0 * n * n)) / denom;
    return half;
}

std::string
formatWithError(double value, double error)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3e +- %.1e", value, error);
    return buf;
}

} // namespace qla::sim
