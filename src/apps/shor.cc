#include "apps/shor.h"

#include <cmath>

#include "apps/qcla.h"
#include "common/logging.h"

namespace qla::apps {

namespace {

double
log2d(std::uint64_t n)
{
    return std::log2(static_cast<double>(n));
}

} // namespace

const std::vector<ShorPaperRow> &
paperTable2()
{
    static const std::vector<ShorPaperRow> rows = {
        {128, 37971, 63729, 115033, 0.11, 0.9},
        {512, 150771, 397910, 1016295, 0.45, 5.5},
        {1024, 301251, 964919, 3270582, 0.90, 13.4},
        {2048, 602259, 2301767, 11148214, 1.80, 32.1},
    };
    return rows;
}

ShorResourceModel::ShorResourceModel(ShorModelConfig config)
    : config_(std::move(config))
{
    const auto &rows = paperTable2();
    qla_assert(rows.size() == 4);

    // Toffoli coefficients from the N = 128 and N = 1024 anchors:
    //   a N log2^2 N + b N log2 N = paper count.
    {
        const double n1 = 128, l1 = 7, y1 = 63729;
        const double n2 = 1024, l2 = 10, y2 = 964919;
        const double a11 = n1 * l1 * l1, a12 = n1 * l1;
        const double a21 = n2 * l2 * l2, a22 = n2 * l2;
        const double det = a11 * a22 - a12 * a21;
        tof_a_ = (y1 * a22 - a12 * y2) / det;
        tof_b_ = (a11 * y2 - y1 * a21) / det;
    }

    // Total-gate coefficients from the N = 128 / 512 / 2048 anchors:
    //   a N^2 + b N log2^2 N + c N log2 N = paper count.
    {
        const double n[3] = {128, 512, 2048};
        const double l[3] = {7, 9, 11};
        const double y[3] = {115033, 1016295, 11148214};
        double m[3][4];
        for (int i = 0; i < 3; ++i) {
            m[i][0] = n[i] * n[i];
            m[i][1] = n[i] * l[i] * l[i];
            m[i][2] = n[i] * l[i];
            m[i][3] = y[i];
        }
        // Gaussian elimination on the 3x4 system.
        for (int col = 0; col < 3; ++col) {
            int pivot = col;
            for (int r = col + 1; r < 3; ++r)
                if (std::fabs(m[r][col]) > std::fabs(m[pivot][col]))
                    pivot = r;
            for (int k = 0; k < 4; ++k)
                std::swap(m[col][k], m[pivot][k]);
            for (int r = 0; r < 3; ++r) {
                if (r == col)
                    continue;
                const double f = m[r][col] / m[col][col];
                for (int k = 0; k < 4; ++k)
                    m[r][k] -= f * m[col][k];
            }
        }
        tot_a_ = m[0][3] / m[0][0];
        tot_b_ = m[1][3] / m[1][1];
        tot_c_ = m[2][3] / m[2][2];
    }
}

std::uint64_t
ShorResourceModel::logicalQubits(std::uint64_t bits) const
{
    // Q(N) = s (6N - log2 N) + 6N + overhead; exact on all Table-2 rows
    // with s = 48 and overhead 675.
    const double s = static_cast<double>(config_.multiplierBlocks);
    const double n = static_cast<double>(bits);
    const double q = s * (6.0 * n - log2d(bits)) + 6.0 * n
        + static_cast<double>(config_.controlOverheadQubits);
    return static_cast<std::uint64_t>(std::llround(q));
}

std::uint64_t
ShorResourceModel::toffoliGates(std::uint64_t bits) const
{
    const double n = static_cast<double>(bits);
    const double l = log2d(bits);
    return static_cast<std::uint64_t>(
        std::llround(tof_a_ * n * l * l + tof_b_ * n * l));
}

std::uint64_t
ShorResourceModel::totalGates(std::uint64_t bits) const
{
    const double n = static_cast<double>(bits);
    const double l = log2d(bits);
    return static_cast<std::uint64_t>(std::llround(
        tot_a_ * n * n + tot_b_ * n * l * l + tot_c_ * n * l));
}

std::uint64_t
ShorResourceModel::qftEccSteps(std::uint64_t bits) const
{
    // Banded (approximate) QFT: each of the N qubits interacts with the
    // nearest log2 N + offset neighbors; one EC step per rotation layer.
    const double bands = log2d(bits)
        + static_cast<double>(config_.qftBandOffset);
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(bits) * bands));
}

ShorResources
ShorResourceModel::estimate(std::uint64_t bits,
                            const arch::QlaChipModel &chip) const
{
    ShorResources out;
    out.bits = bits;
    out.logicalQubits = logicalQubits(bits);
    out.toffoliGates = toffoliGates(bits);
    out.totalGates = totalGates(bits);
    out.qftEccSteps = qftEccSteps(bits);
    out.eccSteps = out.toffoliGates * config_.toffoli.eccStepsPerGate()
        + out.qftEccSteps;
    out.areaSquareMeters = chip.estimate(out.logicalQubits)
        .areaSquareMeters;
    out.singleRunTime = static_cast<double>(out.eccSteps)
        * config_.eccCycleTime;
    out.expectedTime = out.singleRunTime * config_.expectedRepetitions;
    out.computationSize = static_cast<double>(out.eccSteps)
        * static_cast<double>(out.logicalQubits);
    return out;
}

ShorCoSimValidation
validateShorAgainstCoSim(std::uint64_t bits,
                         const ShorResourceModel &model,
                         network::CoSimConfig cosim)
{
    qla_assert(bits >= 2, "block too small");
    ShorCoSimValidation out;
    out.bits = bits;

    network::ProgramConfig program_config;
    program_config.toffoli = model.config().toffoli;
    const network::ProgramWorkload block(
        qclaAdderCircuit(static_cast<std::size_t>(bits)),
        program_config);
    const auto critical = block.criticalPath();
    out.blockCriticalWindows = critical.windows;
    out.blockCriticalToffolis = critical.toffolis;
    qla_assert(critical.toffolis > 0, "QCLA block has no Toffolis");

    cosim.window = model.config().eccCycleTime;
    network::ProgramCoSimulator simulator(block, cosim);
    out.blockReport = simulator.run();
    out.measuredWindowsPerToffoli =
        static_cast<double>(out.blockReport.windows)
        / static_cast<double>(critical.toffolis);

    // MExp structure: the run time is dominated by the critical-path
    // Toffoli count; charge each what the executed schedule measured
    // instead of the closed form's 21 EC steps, keep the QFT tail.
    const arch::QlaChipModel chip;
    const ShorResources row = model.estimate(bits, chip);
    out.closedFormRunTime = row.singleRunTime;
    const double toffoli_windows =
        static_cast<double>(model.toffoliGates(bits))
        * out.measuredWindowsPerToffoli;
    out.extrapolatedRunTime =
        (toffoli_windows + static_cast<double>(model.qftEccSteps(bits)))
        * model.config().eccCycleTime;
    out.ratio = out.extrapolatedRunTime / out.closedFormRunTime;
    return out;
}

ShorHierarchyDesignPoint
shorHierarchyDesignPoint(std::uint64_t bits, double computeFraction,
                         int memoryCodeLevel, std::uint64_t blockBits,
                         const ShorResourceModel &model)
{
    qla_assert(computeFraction > 0.0 && computeFraction <= 1.0,
               "compute fraction must be in (0, 1]");
    ShorHierarchyDesignPoint out;
    out.bits = bits;
    out.computeFraction = computeFraction;
    out.memoryCodeLevel = memoryCodeLevel;

    // Runtime: co-simulate one QCLA block on the uniform mesh and on
    // the split mesh; the measured window ratio is the dilation the
    // cache misses cost, applied to the same MExp extrapolation as
    // validateShorAgainstCoSim.
    const ShorCoSimValidation uniform =
        validateShorAgainstCoSim(blockBits, model);
    out.uniformReport = uniform.blockReport;
    out.uniformRunTime = uniform.extrapolatedRunTime;
    network::CoSimConfig split;
    split.memory.computeFraction = computeFraction;
    split.memory.memoryCodeLevel = memoryCodeLevel;
    const ShorCoSimValidation hierarchy =
        validateShorAgainstCoSim(blockBits, model, split);
    out.splitReport = hierarchy.blockReport;
    out.hierarchyRunTime = hierarchy.extrapolatedRunTime;
    out.runtimeDilation = uniform.blockReport.windows
        ? static_cast<double>(hierarchy.blockReport.windows)
            / static_cast<double>(uniform.blockReport.windows)
        : 1.0;

    // Area: the full N-bit machine's logical qubits split by the same
    // fraction, memory tiles priced at the denser memory profile.
    const std::uint64_t qubits = model.logicalQubits(bits);
    const auto compute_tiles = static_cast<std::uint64_t>(std::llround(
        computeFraction * static_cast<double>(qubits)));
    out.area = arch::regionChipEstimate(
        compute_tiles, qubits - compute_tiles,
        arch::RegionCodeParams::computeDefault(),
        arch::RegionCodeParams::memoryAtLevel(memoryCodeLevel));
    out.areaVersusUniform = out.area.areaVersusUniform;
    return out;
}

std::vector<ShorResources>
ShorResourceModel::table2() const
{
    const arch::QlaChipModel chip;
    std::vector<ShorResources> rows;
    for (const auto &row : paperTable2())
        rows.push_back(estimate(row.bits, chip));
    return rows;
}

} // namespace qla::apps
