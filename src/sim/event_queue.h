/**
 * @file
 * Discrete-event simulation kernel.
 *
 * ARQ and the interconnect scheduler are discrete-event simulations over
 * wall-clock seconds. The kernel provides a deterministic event queue:
 * events scheduled for the same instant fire in scheduling order (FIFO
 * tie-break), so simulations are reproducible regardless of container
 * implementation details.
 */

#ifndef QLA_SIM_EVENT_QUEUE_H
#define QLA_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

namespace qla::sim {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Deterministic priority event queue keyed on simulated seconds.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Seconds now() const { return now_; }

    /**
     * Schedule @p action to run at absolute time @p when.
     *
     * @param when   Absolute simulated time; must be >= now().
     * @param action Callback invoked when the event fires.
     * @return A handle that can be passed to cancel().
     */
    EventId schedule(Seconds when, std::function<void()> action);

    /** Schedule @p action to run @p delay after the current time. */
    EventId scheduleAfter(Seconds delay, std::function<void()> action);

    /** Cancel a pending event. Cancelling a fired event is a no-op. */
    void cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const;

    /**
     * Run a single event.
     *
     * @return false when the queue is empty.
     */
    bool step();

    /** Run events until the queue is empty or @p horizon is reached. */
    void run(Seconds horizon = -1.0);

    /** Number of events executed so far. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        Seconds when;
        EventId id;
        std::function<void()> action;
        bool cancelled = false;
    };

    struct EntryOrder
    {
        bool
        operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->id > b->id; // FIFO among same-time events
        }
    };

    void pruneCancelledTop();

    Seconds now_ = 0.0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::vector<Entry *> live_; // owned entries, freed on pop/destruct
    std::priority_queue<Entry *, std::vector<Entry *>, EntryOrder> heap_;

  public:
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
};

} // namespace qla::sim

#endif // QLA_SIM_EVENT_QUEUE_H
