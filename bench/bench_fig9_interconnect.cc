/**
 * @file
 * Experiment E3 -- Figure 9 (Section 4.2): total connection time versus
 * distance for island separations d in {35, 70, 100, 350, 500, 750,
 * 1000} cells. The paper's headline claims: 100-cell separation is more
 * efficient below ~6000 cells; 350 cells is preferable at larger
 * distances.
 */

#include <cstdio>
#include <string>

#include "teleport/connection_model.h"

using namespace qla;
using namespace qla::teleport;

int
main()
{
    const RepeaterChain chain{RepeaterConfig{}};
    const auto separations = figure9Separations();

    std::printf("== E3: Figure 9 -- connection time vs distance ==\n");
    std::printf("(nested entanglement pumping, Werner-state recursions; "
                "times in seconds)\n\n");
    std::printf("%8s", "D(cells)");
    for (Cells d : separations)
        std::printf("  d=%-6lld", static_cast<long long>(d));
    std::printf("  best-d\n");

    for (Cells distance = 2000; distance <= 30000;
         distance += distance < 8000 ? 1000 : 2000) {
        std::printf("%8lld", static_cast<long long>(distance));
        for (Cells d : separations) {
            const auto plan = chain.plan(distance, d);
            if (plan.feasible)
                std::printf("  %-8.4f", plan.connectionTime);
            else
                std::printf("  %-8s", "inf");
        }
        const auto best = bestSeparation(chain, separations, distance);
        std::printf("  %lld\n",
                    best ? static_cast<long long>(*best) : -1);
    }

    const auto crossover = crossoverDistance(chain, 100, 350, 2000,
                                             30000, 500);
    std::printf("\ncrossover d=100 -> d=350: %s cells (paper: ~6000)\n",
                crossover ? std::to_string(*crossover).c_str() : "none");

    const auto plan6k = chain.plan(6000, 100);
    std::printf("detail at 6000 cells, d=100: %d segments, %d swap "
                "levels, %.0f ops at the busiest island, %.0f "
                "elementary pairs/segment, final F=%.4f\n",
                plan6k.segments, plan6k.swapLevels,
                plan6k.opsAtBusiestIsland,
                plan6k.elementaryPairsPerSegment, plan6k.finalFidelity);

    std::printf("\nisland placement (Section 4.2): d=100 -> every ~3rd "
                "logical qubit in x; d=350 -> every ~10th (tile pitch "
                "47 x 159 cells); every qubit in y.\n");
    return 0;
}
