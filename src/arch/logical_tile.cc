#include "arch/logical_tile.h"

namespace qla::arch {

double
TileGeometry::tileAreaSquareMeters(Micrometers cell_size) const
{
    const double cells = static_cast<double>(pitchX())
        * static_cast<double>(pitchY());
    return units::squareMicrometersToSquareMeters(cells * cell_size
                                                  * cell_size);
}

double
TileGeometry::qubitAreaSquareMillimeters(Micrometers cell_size) const
{
    const double cells = static_cast<double>(qubitWidth)
        * static_cast<double>(qubitHeight);
    return cells * cell_size * cell_size * 1e-6; // um^2 -> mm^2
}

qccd::TrapGrid
buildLogicalQubitTile(const TileGeometry &geometry)
{
    qccd::TrapGrid grid(geometry.qubitWidth, geometry.qubitHeight);

    // Channel ring around the tile border.
    grid.carveChannel({0, 0}, {geometry.qubitWidth - 1, 0});
    grid.carveChannel({0, geometry.qubitHeight - 1},
                      {geometry.qubitWidth - 1,
                       geometry.qubitHeight - 1});
    grid.carveChannel({0, 0}, {0, geometry.qubitHeight - 1});
    grid.carveChannel({geometry.qubitWidth - 1, 0},
                      {geometry.qubitWidth - 1,
                       geometry.qubitHeight - 1});

    // Three conglomerations across x: ancilla | data | ancilla. Each
    // occupies a column band with 7 groups stacked in y; each group has
    // three ion rows (data, ancilla, verification) of 7 ions plus a
    // cooling ion row, separated by channel rows.
    const Cells band_width = geometry.qubitWidth / 3; // 12 cells
    const Cells group_height = geometry.qubitHeight / 7; // 21 cells
    for (int band = 0; band < 3; ++band) {
        const Cells x0 = band * band_width;
        // Vertical channel between bands.
        grid.carveChannel({x0, 0}, {x0, geometry.qubitHeight - 1});
        for (int group = 0; group < 7; ++group) {
            const Cells y0 = group * group_height;
            // Channel row at the top of each group.
            grid.carveChannel({x0, y0}, {x0 + band_width - 1, y0});
            // Three ion rows: data, ancilla, verification; 7 traps each,
            // with a channel row between them for transversal access.
            for (int row = 0; row < 3; ++row) {
                const Cells y = y0 + 2 + 2 * row;
                grid.carveChannel({x0 + 1, y + 1},
                                  {x0 + band_width - 1, y + 1});
                const qccd::IonKind kind = qccd::IonKind::Data;
                for (int ion = 0; ion < 7; ++ion) {
                    const qccd::Coord at{x0 + 2 + ion, y};
                    grid.placeTrap(at);
                    grid.addIon(kind, at);
                }
                // Sympathetic cooling ion at the row end.
                const qccd::Coord cool{x0 + 2 + 7, y};
                grid.placeTrap(cool);
                grid.addIon(qccd::IonKind::Cooling, cool);
            }
        }
    }
    return grid;
}

} // namespace qla::arch
