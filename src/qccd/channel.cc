#include "qccd/channel.h"

#include <algorithm>

#include "common/logging.h"

namespace qla::qccd {

Seconds
BallisticChannel::firstIonLatency() const
{
    return tech_.splitTime
        + tech_.cellTraversalTime * static_cast<double>(length_);
}

Seconds
BallisticChannel::headway(std::size_t parallel_injectors) const
{
    qla_assert(parallel_injectors >= 1);
    // Injection rate is limited by the split operation unless several
    // injection ports alternate; propagation advances one cell per
    // traversal step regardless.
    const Seconds inject = tech_.splitTime
        / static_cast<double>(parallel_injectors);
    return std::max(tech_.cellTraversalTime, inject);
}

Seconds
BallisticChannel::deliveryTime(std::size_t count,
                               std::size_t parallel_injectors) const
{
    if (count == 0)
        return 0.0;
    return firstIonLatency()
        + headway(parallel_injectors) * static_cast<double>(count - 1);
}

double
BallisticChannel::throughputQbps(std::size_t parallel_injectors) const
{
    return 1.0 / headway(parallel_injectors);
}

double
BallisticChannel::perIonError() const
{
    return tech_.moveError(length_, 1, 0);
}

} // namespace qla::qccd
