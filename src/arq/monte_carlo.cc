#include "arq/monte_carlo.h"

#include <bit>
#include <cstdio>
#include <string>

#include <algorithm>
#include <array>
#include <memory>

#include "arq/batched_monte_carlo.h"
#include "common/logging.h"
#include "ecc/steane.h"
#include "sim/shot_scheduler.h"

namespace qla::arq {

NoiseParameters
NoiseParameters::swept(double p)
{
    NoiseParameters noise;
    noise.gate1Error = p;
    noise.gate2Error = p;
    noise.measureError = p;
    noise.movementErrorPerCell = 1e-6; // held at the expected rate
    return noise;
}

LogicalQubitExperiment::LogicalQubitExperiment(const ecc::CssCode &code,
                                               NoiseParameters noise,
                                               LayoutDistances layout,
                                               int max_prep_attempts)
    : code_(code), noise_(noise), layout_(layout),
      max_prep_attempts_(max_prep_attempts), n_(code.blockLength()),
      frame_(3 * code.blockLength() * code.blockLength() * 3),
      engine_(frame_)
{
    qla_assert(max_prep_attempts_ >= 1);
}

std::size_t
LogicalQubitExperiment::ion(std::size_t c, std::size_t g, Role role,
                            std::size_t i) const
{
    qla_assert(c < 3 && g < n_ && i < n_);
    return ((c * n_ + g) * 3 + static_cast<std::size_t>(role)) * n_ + i;
}

void
LogicalQubitExperiment::noisy1(std::size_t q, Rng &rng)
{
    frame_.depolarize1(q, noise_.gate1Error, rng);
}

void
LogicalQubitExperiment::noisy2(std::size_t a, std::size_t b, Rng &rng)
{
    frame_.depolarize2(a, b, noise_.gate2Error, rng);
}

void
LogicalQubitExperiment::moveIon(std::size_t q, Cells cells, int turns,
                                Rng &rng)
{
    const double cell_equivalents = static_cast<double>(cells)
        + noise_.splitCellEquivalent // every move starts with a split
        + noise_.turnCellEquivalent * turns;
    frame_.depolarize1(q, noise_.movementErrorPerCell * cell_equivalents,
                       rng);
}

void
LogicalQubitExperiment::moveIonInterBlock(std::size_t q, Rng &rng)
{
    // Same arithmetic as TileRowRecorder::interBlockMoveProbability so
    // the scalar and batched engines charge the identical probability.
    const double cell_equivalents =
        static_cast<double>(layout_.interBlockCells)
        + noise_.splitCellEquivalent
        + noise_.turnCellEquivalent * layout_.interBlockTurns;
    frame_.depolarize1(q,
                       noise_.movementErrorPerCell * cell_equivalents
                           + noise_.eprResidualError,
                       rng);
}

bool
LogicalQubitExperiment::measureZ(std::size_t q, Rng &rng)
{
    return frame_.measureZFlip(q, noise_.measureError, rng);
}

bool
LogicalQubitExperiment::measureX(std::size_t q, Rng &rng)
{
    return frame_.measureXFlip(q, noise_.measureError, rng);
}

void
LogicalQubitExperiment::encodeLogical(std::size_t c, std::size_t g,
                                      Role role, bool plus, Rng &rng)
{
    const auto &sched = code_.zeroEncoder();
    for (std::size_t i = 0; i < n_; ++i)
        frame_.resetQubit(ion(c, g, role, i));
    for (std::size_t pivot : sched.pivots) {
        // H on the pivot (the frame transform is trivial on a fresh
        // qubit but the gate can still fault).
        engine_.h(ion(c, g, role, pivot));
        noisy1(ion(c, g, role, pivot), rng);
    }
    for (const auto &[control, target] : sched.cnots) {
        const std::size_t qc = ion(c, g, role, control);
        const std::size_t qt = ion(c, g, role, target);
        moveIon(qt, layout_.intraBlockCells, layout_.intraBlockTurns, rng);
        engine_.cnot(qc, qt);
        noisy2(qc, qt, rng);
        moveIon(qt, layout_.intraBlockCells, layout_.intraBlockTurns, rng);
    }
    if (plus) {
        // Transversal H turns |0>_L into |+>_L (the code is self-dual).
        for (std::size_t i = 0; i < n_; ++i) {
            engine_.h(ion(c, g, role, i));
            noisy1(ion(c, g, role, i), rng);
        }
    }
}

bool
LogicalQubitExperiment::verifyLogical(std::size_t c, std::size_t g,
                                      Role role, bool plus, Rng &rng)
{
    // Copy the dangerous error type onto an *encoded* verification
    // block and check the difference-codeword syndrome and logical
    // parity. For |0>_L the dangerous errors are X (copied by
    // ancilla->verify CNOTs, Z-basis readout); for |+>_L they are Z
    // (verify->ancilla CNOTs, X-basis readout).
    encodeLogical(c, g, Role::Verify, plus, rng);
    ecc::QubitMask flips = 0;
    for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t qa = ion(c, g, role, i);
        const std::size_t qv = ion(c, g, Role::Verify, i);
        moveIon(qv, layout_.intraBlockCells, layout_.intraBlockTurns,
                rng);
        if (plus)
            engine_.cnot(qv, qa);
        else
            engine_.cnot(qa, qv);
        noisy2(qa, qv, rng);
        moveIon(qv, layout_.intraBlockCells, layout_.intraBlockTurns,
                rng);
        const bool flip = plus ? measureX(qv, rng) : measureZ(qv, rng);
        if (flip)
            flips |= ecc::QubitMask{1} << i;
    }
    const auto &checks = plus ? code_.xChecks() : code_.zChecks();
    const bool bad_syndrome = ecc::syndromeOf(checks, flips) != 0;
    const bool bad_parity = ecc::maskParity(
        flips & (plus ? code_.logicalX() : code_.logicalZ()));
    return bad_syndrome || bad_parity;
}

void
LogicalQubitExperiment::prepVerified(std::size_t c, std::size_t g,
                                     Role role, bool plus, Rng &rng,
                                     ExperimentStats *stats)
{
    int attempts = 0;
    do {
        ++attempts;
        encodeLogical(c, g, role, plus, rng);
    } while (verifyLogical(c, g, role, plus, rng)
             && attempts < max_prep_attempts_);
    if (stats)
        stats->prepAttempts.add(attempts);
}

std::uint32_t
LogicalQubitExperiment::extractSyndrome(std::size_t c, std::size_t g,
                                        Role data_role, bool detect_x,
                                        Rng &rng, ExperimentStats *stats)
{
    // Steane-style extraction: encoded ancilla, transversal CNOT, block
    // readout. X errors are read through a |+>_L ancilla (CNOT
    // data->ancilla, Z-basis readout: the ancilla is invariant under the
    // codeword copy, so no logical information leaks); Z errors through
    // a |0>_L ancilla (CNOT ancilla->data, X-basis readout).
    prepVerified(c, g, Role::Ancilla, detect_x, rng, stats);

    ecc::QubitMask flips = 0;
    for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t qd = ion(c, g, data_role, i);
        const std::size_t qa = ion(c, g, Role::Ancilla, i);
        // The ancilla ion shuttles to the data block and back: the
        // inter-block distance r = 12 cells with up to two turns.
        moveIonInterBlock(qa, rng);
        if (detect_x)
            engine_.cnot(qd, qa);
        else
            engine_.cnot(qa, qd);
        noisy2(qd, qa, rng);
        moveIonInterBlock(qa, rng);
        const bool flip = detect_x ? measureZ(qa, rng)
                                   : measureX(qa, rng);
        if (flip)
            flips |= ecc::QubitMask{1} << i;
    }
    const auto &checks = detect_x ? code_.zChecks() : code_.xChecks();
    const std::uint32_t syndrome = ecc::syndromeOf(checks, flips);
    if (stats)
        stats->nontrivialSyndrome.add(syndrome != 0);
    return syndrome;
}

void
LogicalQubitExperiment::ecCycleL1(std::size_t c, std::size_t g,
                                  Role data_role, Rng &rng,
                                  ExperimentStats *stats)
{
    for (const bool detect_x : {true, false}) {
        std::uint32_t syndrome = extractSyndrome(c, g, data_role,
                                                 detect_x, rng, stats);
        if (syndrome != 0) {
            // Non-trivial: extract once more and act on the repeat
            // (paper Section 4.1.1 assumption (b)).
            syndrome = extractSyndrome(c, g, data_role, detect_x, rng,
                                       stats);
        }
        if (syndrome != 0) {
            const ecc::QubitMask corr = detect_x
                ? code_.xCorrection(syndrome)
                : code_.zCorrection(syndrome);
            for (std::size_t i = 0; i < n_; ++i) {
                if (!(corr & (ecc::QubitMask{1} << i)))
                    continue;
                const std::size_t q = ion(c, g, data_role, i);
                // Fold the Pauli correction into the frame; the physical
                // gate can itself fault.
                if (detect_x)
                    frame_.injectX(q);
                else
                    frame_.injectZ(q);
                noisy1(q, rng);
            }
        }
    }
}

void
LogicalQubitExperiment::prepL2Ancilla(std::size_t c, bool plus, Rng &rng,
                                      ExperimentStats *stats)
{
    const auto &sched = code_.zeroEncoder();
    for (int attempt = 0; attempt < max_prep_attempts_; ++attempt) {
        // Level-1 verified preparation of each sub-block.
        for (std::size_t g = 0; g < n_; ++g)
            prepVerified(c, g, Role::Data, false, rng, stats);

        // Level-2 encoding network: logical H on pivot blocks, logical
        // (transversal) CNOTs between blocks.
        for (std::size_t pivot : sched.pivots) {
            for (std::size_t i = 0; i < n_; ++i) {
                engine_.h(ion(c, pivot, Role::Data, i));
                noisy1(ion(c, pivot, Role::Data, i), rng);
            }
        }
        for (const auto &[control, target] : sched.cnots) {
            for (std::size_t i = 0; i < n_; ++i) {
                const std::size_t qc = ion(c, control, Role::Data, i);
                const std::size_t qt = ion(c, target, Role::Data, i);
                moveIonInterBlock(qt, rng);
                engine_.cnot(qc, qt);
                noisy2(qc, qt, rng);
                moveIonInterBlock(qt, rng);
            }
        }
        if (plus) {
            // Transversal H at level 2: |0>_L2 -> |+>_L2.
            for (std::size_t g = 0; g < n_; ++g) {
                for (std::size_t i = 0; i < n_; ++i) {
                    engine_.h(ion(c, g, Role::Data, i));
                    noisy1(ion(c, g, Role::Data, i), rng);
                }
            }
        }

        // Level-1 EC on each sub-block (the per-sub-block syndrome
        // extraction stages in the lower half of Figure 6).
        for (std::size_t g = 0; g < n_; ++g)
            ecCycleL1(c, g, Role::Data, rng, stats);

        // Level-2 verification: copy the dangerous error type onto the
        // verification rows, two-level decode, and check the outer
        // syndrome and logical parity. "Start Over" on failure.
        ecc::QubitMask outer_flips = 0;
        for (std::size_t g = 0; g < n_; ++g) {
            // Encoded verification block per sub-block (see
            // verifyLogical).
            encodeLogical(c, g, Role::Verify, plus, rng);
            ecc::QubitMask flips = 0;
            for (std::size_t i = 0; i < n_; ++i) {
                const std::size_t qd = ion(c, g, Role::Data, i);
                const std::size_t qv = ion(c, g, Role::Verify, i);
                moveIon(qv, layout_.intraBlockCells,
                        layout_.intraBlockTurns, rng);
                if (plus)
                    engine_.cnot(qv, qd);
                else
                    engine_.cnot(qd, qv);
                noisy2(qd, qv, rng);
                moveIon(qv, layout_.intraBlockCells,
                        layout_.intraBlockTurns, rng);
                const bool flip = plus ? measureX(qv, rng)
                                       : measureZ(qv, rng);
                if (flip)
                    flips |= ecc::QubitMask{1} << i;
            }
            const auto &checks = plus ? code_.xChecks()
                                      : code_.zChecks();
            const ecc::QubitMask corrected = flips
                ^ (plus ? code_.zCorrection(ecc::syndromeOf(checks,
                                                            flips))
                        : code_.xCorrection(ecc::syndromeOf(checks,
                                                            flips)));
            const bool logical_bit = ecc::maskParity(
                corrected
                & (plus ? code_.logicalX() : code_.logicalZ()));
            if (logical_bit)
                outer_flips |= ecc::QubitMask{1} << g;
        }
        const auto &outer_checks = plus ? code_.xChecks()
                                        : code_.zChecks();
        const bool bad = ecc::syndromeOf(outer_checks, outer_flips) != 0
            || ecc::maskParity(outer_flips
                               & (plus ? code_.logicalX()
                                       : code_.logicalZ()));
        if (!bad)
            return;
    }
}

std::uint32_t
LogicalQubitExperiment::extractSyndromeL2(bool detect_x, Rng &rng,
                                          ExperimentStats *stats)
{
    // X-syndrome uses the |+>_L2 ancilla in conglomeration 1; Z uses the
    // |0>_L2 ancilla in conglomeration 2 (Figure 5's two sides).
    const std::size_t ac = detect_x ? 1 : 2;
    prepL2Ancilla(ac, detect_x, rng, stats);

    // Transversal logical CNOT between the data and ancilla
    // conglomerations.
    for (std::size_t g = 0; g < n_; ++g) {
        for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t qd = ion(0, g, Role::Data, i);
            const std::size_t qa = ion(ac, g, Role::Data, i);
            moveIonInterBlock(qa, rng);
            if (detect_x)
                engine_.cnot(qd, qa);
            else
                engine_.cnot(qa, qd);
            noisy2(qd, qa, rng);
            moveIonInterBlock(qa, rng);
        }
    }

    // Level-1 EC on the data and ancilla sub-blocks after the logical
    // gate (the "ecc" boxes of Figure 6).
    for (std::size_t g = 0; g < n_; ++g) {
        ecCycleL1(0, g, Role::Data, rng, stats);
        ecCycleL1(ac, g, Role::Data, rng, stats);
    }

    // Read out the whole ancilla conglomeration and decode two levels.
    ecc::QubitMask outer_flips = 0;
    for (std::size_t g = 0; g < n_; ++g) {
        ecc::QubitMask flips = 0;
        for (std::size_t i = 0; i < n_; ++i) {
            const bool flip = detect_x
                ? measureZ(ion(ac, g, Role::Data, i), rng)
                : measureX(ion(ac, g, Role::Data, i), rng);
            if (flip)
                flips |= ecc::QubitMask{1} << i;
        }
        const auto &checks = detect_x ? code_.zChecks()
                                      : code_.xChecks();
        const std::uint32_t s = ecc::syndromeOf(checks, flips);
        const ecc::QubitMask corrected = flips
            ^ (detect_x ? code_.xCorrection(s) : code_.zCorrection(s));
        const bool logical_bit = ecc::maskParity(
            corrected
            & (detect_x ? code_.logicalZ() : code_.logicalX()));
        if (logical_bit)
            outer_flips |= ecc::QubitMask{1} << g;
    }
    const auto &outer_checks = detect_x ? code_.zChecks()
                                        : code_.xChecks();
    const std::uint32_t outer = ecc::syndromeOf(outer_checks,
                                                outer_flips);
    if (stats)
        stats->nontrivialSyndrome.add(outer != 0);
    return outer;
}

void
LogicalQubitExperiment::ecCycleL2(Rng &rng, ExperimentStats *stats)
{
    for (const bool detect_x : {true, false}) {
        std::uint32_t outer = extractSyndromeL2(detect_x, rng, stats);
        if (outer != 0)
            outer = extractSyndromeL2(detect_x, rng, stats);
        if (outer != 0) {
            const ecc::QubitMask corr = detect_x
                ? code_.xCorrection(outer)
                : code_.zCorrection(outer);
            for (std::size_t g = 0; g < n_; ++g) {
                if (!(corr & (ecc::QubitMask{1} << g)))
                    continue;
                // Logical Pauli on sub-block g: transversal physical
                // Paulis folded into the frame.
                for (std::size_t i = 0; i < n_; ++i) {
                    const std::size_t q = ion(0, g, Role::Data, i);
                    if (detect_x)
                        frame_.injectX(q);
                    else
                        frame_.injectZ(q);
                    noisy1(q, rng);
                }
            }
        }
    }
}

ecc::QubitMask
LogicalQubitExperiment::rowMask(std::size_t c, std::size_t g, Role role,
                                bool x_bits) const
{
    ecc::QubitMask mask = 0;
    for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t q = ion(c, g, role, i);
        const bool bit = x_bits ? frame_.xBit(q) : frame_.zBit(q);
        if (bit)
            mask |= ecc::QubitMask{1} << i;
    }
    return mask;
}

bool
LogicalQubitExperiment::decodeLevel1(std::size_t c, std::size_t g,
                                     Role role) const
{
    // The experiment's ideal state is |0>_L: residual logical-Z frames
    // are stabilizers of it (gauge), so only logical-X residuals are
    // failures. By the self-duality of the code and circuits, the
    // logical-Z failure rate of the dual |+>_L experiment is
    // statistically identical.
    return code_.decodeXErrorIsLogical(rowMask(c, g, role, true));
}

bool
LogicalQubitExperiment::decodeLevel2() const
{
    // Only the logical-X direction counts for the |0>_L2 input; see
    // decodeLevel1.
    ecc::QubitMask outer_x = 0;
    for (std::size_t g = 0; g < n_; ++g) {
        // Ideal per-block decode: a residual logical X of a sub-block
        // becomes one outer-level error bit.
        const ecc::QubitMask xm = rowMask(0, g, Role::Data, true);
        if (code_.decodeXErrorIsLogical(xm))
            outer_x |= ecc::QubitMask{1} << g;
    }
    return code_.decodeXErrorIsLogical(outer_x);
}

bool
LogicalQubitExperiment::runShot(int level, Rng &rng,
                                ExperimentStats *stats)
{
    qla_assert(level == 1 || level == 2, "levels 1 and 2 are supported");
    frame_.clear(); // perfectly encoded |0>_L input

    if (level == 1) {
        // Transversal logical one-qubit gate on the level-1 block.
        for (std::size_t i = 0; i < n_; ++i)
            noisy1(ion(0, 0, Role::Data, i), rng);
        ecCycleL1(0, 0, Role::Data, rng, stats);
        return decodeLevel1(0, 0, Role::Data);
    }

    // Level 2: transversal gate over all 49 data ions, then a full
    // level-2 EC cycle.
    for (std::size_t g = 0; g < n_; ++g)
        for (std::size_t i = 0; i < n_; ++i)
            noisy1(ion(0, g, Role::Data, i), rng);
    ecCycleL2(rng, stats);
    return decodeLevel2();
}

std::string
LogicalQubitExperiment::describeResidual() const
{
    std::string out;
    for (std::size_t g = 0; g < n_; ++g) {
        const ecc::QubitMask xm = rowMask(0, g, Role::Data, true);
        const ecc::QubitMask zm = rowMask(0, g, Role::Data, false);
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "block %zu: x=%02x (logical %d) z=%02x (logical "
                      "%d)\n",
                      g, xm, code_.decodeXErrorIsLogical(xm) ? 1 : 0, zm,
                      code_.decodeZErrorIsLogical(zm) ? 1 : 0);
        out += buf;
    }
    return out;
}

sim::RateStat
LogicalQubitExperiment::failureRate(int level, std::size_t shots,
                                    Rng &rng, ExperimentStats *stats)
{
    sim::RateStat rate;
    for (std::size_t s = 0; s < shots; ++s) {
        Rng shot_rng = rng.split();
        const bool failed = runShot(level, shot_rng, stats);
        rate.add(failed);
        if (stats)
            stats->logicalFailure.add(failed);
    }
    return rate;
}

namespace {

/**
 * Scheduler chunk size: whole shot groups, so every chunk's word
 * grouping matches the grouping of a single uninterrupted run.
 */
std::size_t
alignedChunkShots(const McRunOptions &options)
{
    const std::size_t capacity = options.batch.groupWords * kBatchLanes;
    if (options.chunkShots <= capacity)
        return capacity;
    return options.chunkShots - options.chunkShots % capacity;
}

/** Per-chunk partial result, reduced in fixed chunk order. */
struct ChunkResult
{
    sim::RateStat rate;
    ExperimentStats stats;
};

/**
 * Small per-worker experiment cache keyed by sweep point (round-robin
 * eviction): an experiment holds several MB of frames and sampler
 * rings, so workers keep only a few.
 */
struct WorkerCache
{
    static constexpr std::size_t kSlots = 3;
    std::array<std::size_t, kSlots> point{};
    std::array<std::unique_ptr<BatchedLogicalQubitExperiment>, kSlots>
        experiment;
    std::size_t next_evict = 0;
};

/** One scheduler job: a contiguous shot range of one task. */
struct ShotChunk
{
    std::size_t task = 0;
    std::uint64_t firstShot = 0;
    std::size_t count = 0;
};

std::vector<ShotChunk>
chunkTasks(std::size_t num_tasks, std::size_t shots,
           std::size_t chunk_shots)
{
    std::vector<ShotChunk> chunks;
    for (std::size_t task = 0; task < num_tasks; ++task)
        for (std::size_t first = 0; first < shots; first += chunk_shots)
            chunks.push_back({task, first,
                              std::min(chunk_shots, shots - first)});
    return chunks;
}

} // namespace

sim::RateStat
runLogicalExperiment(const ecc::CssCode &code, const NoiseParameters &noise,
                     int level, std::size_t shots, std::uint64_t seed,
                     const McRunOptions &options, ExperimentStats *stats)
{
    const std::vector<ShotChunk> chunks
        = chunkTasks(1, shots, alignedChunkShots(options));
    std::vector<ChunkResult> results(chunks.size());

    sim::ShotScheduler scheduler(options.threads);
    std::vector<std::unique_ptr<BatchedLogicalQubitExperiment>> cache(
        scheduler.threadCount());
    scheduler.run(chunks.size(), [&](std::size_t job, int worker) {
        auto &experiment = cache[worker];
        if (!experiment)
            experiment = std::make_unique<BatchedLogicalQubitExperiment>(
                code, noise, LayoutDistances{}, 16, options.batch);
        const ShotChunk &chunk = chunks[job];
        results[job].rate = experiment->failureRateRange(
            level, chunk.firstShot, chunk.count, seed,
            stats ? &results[job].stats : nullptr);
    });

    // Fixed-order reduction: bit-identical results for every thread
    // count and stealing schedule.
    sim::RateStat rate;
    for (const ChunkResult &result : results) {
        rate.merge(result.rate);
        if (stats)
            stats->merge(result.stats);
    }
    return rate;
}

std::vector<ThresholdPoint>
thresholdSweep(const std::vector<double> &physical_errors,
               std::size_t shots, std::uint64_t seed,
               const McRunOptions &options)
{
    // Task seeds derive exactly as in the sequential sweep (one seeder
    // draw per task in point order), so the parallel sweep reproduces
    // its results bit for bit.
    struct SweepTask
    {
        std::size_t point;
        int level;
        double p;
        std::uint64_t seed;
    };
    std::vector<SweepTask> tasks;
    Rng seeder(seed);
    for (std::size_t i = 0; i < physical_errors.size(); ++i) {
        const double p = physical_errors[i];
        tasks.push_back({i, 1, p, seeder.next64()});
        tasks.push_back({i, 2, p, seeder.next64()});
    }

    const std::vector<ShotChunk> chunks
        = chunkTasks(tasks.size(), shots, alignedChunkShots(options));
    std::vector<ChunkResult> results(chunks.size());

    sim::ShotScheduler scheduler(options.threads);
    // Construction records the tile traces, so a worker reuses its
    // cached experiment across levels and chunks of the same point;
    // block distribution means a worker mostly walks one point's
    // chunks before stealing elsewhere, so a few slots suffice.
    std::vector<WorkerCache> cache(scheduler.threadCount());
    scheduler.run(chunks.size(), [&](std::size_t job, int worker) {
        const ShotChunk &chunk = chunks[job];
        const SweepTask &task = tasks[chunk.task];
        WorkerCache &wc = cache[worker];
        BatchedLogicalQubitExperiment *experiment = nullptr;
        for (std::size_t s = 0; s < WorkerCache::kSlots; ++s) {
            if (wc.experiment[s] && wc.point[s] == task.point) {
                experiment = wc.experiment[s].get();
                break;
            }
        }
        if (!experiment) {
            const std::size_t slot = wc.next_evict;
            wc.next_evict = (wc.next_evict + 1) % WorkerCache::kSlots;
            wc.point[slot] = task.point;
            wc.experiment[slot]
                = std::make_unique<BatchedLogicalQubitExperiment>(
                    ecc::steaneCode(), NoiseParameters::swept(task.p),
                    LayoutDistances{}, 16, options.batch);
            experiment = wc.experiment[slot].get();
        }
        results[job].rate = experiment->failureRateRange(
            task.level, chunk.firstShot, chunk.count, task.seed, nullptr);
    });

    std::vector<sim::RateStat> task_rates(tasks.size());
    for (std::size_t j = 0; j < chunks.size(); ++j)
        task_rates[chunks[j].task].merge(results[j].rate);

    std::vector<ThresholdPoint> points(physical_errors.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        ThresholdPoint &point = points[tasks[t].point];
        point.physicalError = tasks[t].p;
        const sim::RateStat &rate = task_rates[t];
        if (tasks[t].level == 1) {
            point.level1Failure = rate.rate();
            point.level1Error = rate.halfWidth95();
        } else {
            point.level2Failure = rate.rate();
            point.level2Error = rate.halfWidth95();
        }
    }
    return points;
}

std::vector<ThresholdPoint>
thresholdSweep(const std::vector<double> &physical_errors,
               std::size_t shots, std::uint64_t seed)
{
    return thresholdSweep(physical_errors, shots, seed, McRunOptions{});
}

std::vector<ThresholdPoint>
thresholdSweepScalar(const std::vector<double> &physical_errors,
                     std::size_t shots, std::uint64_t seed)
{
    std::vector<ThresholdPoint> points;
    Rng rng(seed);
    for (double p : physical_errors) {
        LogicalQubitExperiment experiment(ecc::steaneCode(),
                                          NoiseParameters::swept(p));
        ThresholdPoint point;
        point.physicalError = p;
        const auto l1 = experiment.failureRate(1, shots, rng);
        const auto l2 = experiment.failureRate(2, shots, rng);
        point.level1Failure = l1.rate();
        point.level1Error = l1.halfWidth95();
        point.level2Failure = l2.rate();
        point.level2Error = l2.halfWidth95();
        points.push_back(point);
    }
    return points;
}

double
estimateThreshold(const std::vector<ThresholdPoint> &points)
{
    for (std::size_t i = 1; i < points.size(); ++i) {
        const auto &a = points[i - 1];
        const auto &b = points[i];
        const double da = a.level2Failure - a.level1Failure;
        const double db = b.level2Failure - b.level1Failure;
        if (da <= 0.0 && db > 0.0) {
            // Linear interpolation of the sign change.
            const double t = da == db ? 0.0 : -da / (db - da);
            return a.physicalError
                + t * (b.physicalError - a.physicalError);
        }
    }
    return 0.0;
}

} // namespace qla::arq
