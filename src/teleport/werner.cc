#include "teleport/werner.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qla::teleport {

WernerPair
depolarize(WernerPair pair, double p)
{
    qla_assert(p >= 0.0 && p <= 1.0, "bad depolarization probability ", p);
    return {(1.0 - p) * pair.fidelity + p * 0.25};
}

WernerPair
transportDecay(WernerPair pair, Cells cells, double per_cell_error)
{
    qla_assert(cells >= 0);
    // Per-cell depolarization compounds geometrically; the fixed point is
    // the maximally mixed state F = 1/4.
    const double survive = std::pow(1.0 - per_cell_error,
                                    static_cast<double>(cells));
    return {0.25 + (pair.fidelity - 0.25) * survive};
}

PurifyOutcome
purify(WernerPair kept, WernerPair sacrifice, double op_error)
{
    const double f1 = kept.fidelity;
    const double f2 = sacrifice.fidelity;
    const double g1 = (1.0 - f1) / 3.0;
    const double g2 = (1.0 - f2) / 3.0;

    const double p_ok = f1 * f2 + f1 * g2 + f2 * g1 + 5.0 * g1 * g2;
    qla_assert(p_ok > 0.0, "degenerate purification step");
    const double f_out = (f1 * f2 + g1 * g2) / p_ok;

    PurifyOutcome out;
    out.pair = depolarize({f_out}, op_error);
    out.successProbability = std::clamp(p_ok, 0.0, 1.0);
    return out;
}

WernerPair
swapPairs(WernerPair a, WernerPair b, double op_error)
{
    const double f = a.fidelity * b.fidelity
        + (1.0 - a.fidelity) * (1.0 - b.fidelity) / 3.0;
    return depolarize({f}, op_error);
}

double
pumpingFixedPoint(double sacrifice_f, double op_error)
{
    double f = sacrifice_f;
    for (int i = 0; i < 4096; ++i) {
        const double next =
            purify({f}, {sacrifice_f}, op_error).pair.fidelity;
        if (std::abs(next - f) < 1e-15)
            return next;
        f = next;
    }
    return f;
}

} // namespace qla::teleport
