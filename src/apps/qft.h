/**
 * @file
 * Banded (approximate) quantum Fourier transform circuit generator.
 *
 * The paper's Shor evaluation ends modular exponentiation with a banded
 * QFT: each qubit interacts only with its nearest log2 N + 6 neighbors,
 * because smaller controlled rotations fall below the fault-tolerant
 * approximation threshold (paper Section 5; Barenco et al.'s approximate
 * QFT). The interconnect study only cares about the *communication
 * pattern* -- which logical-qubit pairs interact in which layer -- so
 * the banded controlled rotations are emitted as CZ ops: one transversal
 * two-qubit interaction each, the same EPR-pair footprint as the exact
 * rotation, without dragging non-Clifford phases into the IR.
 */

#ifndef QLA_APPS_QFT_H
#define QLA_APPS_QFT_H

#include <cstdint>

#include "circuit/circuit.h"

namespace qla::apps {

/** Band width the paper uses for an n-bit QFT: log2 n + @p offset. */
std::size_t qftBandWidth(std::size_t n, std::size_t offset = 6);

/**
 * Build the banded QFT on @p n qubits: for each qubit i, an H followed
 * by controlled rotations (emitted as CZ) onto the next @p band qubits.
 * With band >= n - 1 this is the exact QFT's interaction pattern.
 */
circuit::QuantumCircuit bandedQftCircuit(std::size_t n, std::size_t band);

} // namespace qla::apps

#endif // QLA_APPS_QFT_H
