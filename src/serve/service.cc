#include "serve/service.h"

namespace qla::serve {

std::size_t
SweepService::submit(SweepRequest request)
{
    queue_.push_back(std::move(request));
    return queue_.size() - 1;
}

bool
SweepService::processNext(SweepResponse &response)
{
    if (queue_.empty())
        return false;
    SweepRequest request = std::move(queue_.front());
    queue_.pop_front();

    response = SweepResponse{};
    response.name = request.name;
    response.configHash = request.spec.configHash();

    // Result-cache replay: an identical spec (same config hash) has
    // already been served -- return the recorded text. Only complete,
    // unsharded runs are cached, so the cached text is always the
    // whole answer.
    auto cached = results_.find(response.configHash);
    if (cached != results_.end()) {
        response.complete = true;
        response.fromResultCache = true;
        response.output = cached->second;
        return true;
    }

    const RunOutcome outcome
        = runSweepJob(request.spec, request.options, caches_);
    response.complete = outcome.complete;
    response.output = outcome.output;
    response.error = outcome.error;
    if (outcome.complete && request.options.shardCount == 1)
        results_.emplace(response.configHash, outcome.output);
    return true;
}

std::vector<SweepResponse>
SweepService::drain()
{
    std::vector<SweepResponse> responses;
    SweepResponse response;
    while (processNext(response))
        responses.push_back(response);
    return responses;
}

} // namespace qla::serve
